"""Concurrent serve/optimize: the ingest queue and background worker.

The single-threaded loop (:class:`~repro.optimize.online.OnlineOptimizer`)
stalls every serve while a batch solves — an SGP solve takes orders of
magnitude longer than a cached ask.  This module moves the solve off
the serve thread:

- :class:`VoteQueue` — a small bounded hand-off queue between the
  ingest (serve) thread and the worker thread.  ``put`` blocks when the
  queue is full (backpressure, counted as
  ``optimize_ingest_blocked_total``) and refuses once the queue is
  closed;
- :class:`OptimizerWorker` — a daemon thread that drains the queue,
  buffers votes into an :class:`OnlineOptimizer` running against a
  private *shadow copy* of the augmented graph, and publishes each
  solved batch to the live graph and serving engine as one atomic
  weight-patch epoch (:meth:`SimilarityEngine.publish`).

Why a shadow graph
------------------
The solvers mutate edge weights in place over many seconds; letting
them run on the live graph would expose serves to half-applied solves.
The shadow is a deep copy taken at construction, kept current by the
worker itself: every published batch lands on both graphs, so shadow
and live knowledge-graph weights are identical between publications.
Query attachments diverge by design — the worker attaches only *voted*
queries to the shadow (from the links captured at submit time), while
the live graph carries every transient serve-time question.  Query
nodes have out-links only, so they contribute nothing to each other's
constraint rows and the shadow solve is bitwise-identical to the solve
the single-threaded loop would have run on the live graph.

Crash safety composes with the WAL exactly as in durable single-thread
mode: :meth:`OptimizerWorker.submit` logs the vote (with the query's
out-links, so recovery can re-attach queries no snapshot saw) *before*
enqueueing it — log before enqueue — and each publication checkpoints
the shadow graph stamped with the batch's last WAL sequence — snapshot
on publish.  A crash between the two replays the batch
deterministically from the WAL tail.

Supported topology: one ingest/serve thread plus one worker thread.
Structural graph mutations (new entities or documents) remain
admin-time, single-threaded operations.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import VoteError, WorkerError
from repro.graph.augmented import AugmentedGraph
from repro.obs import MetricsRegistry, get_registry, trace_span
from repro.obs.recorder import active_recorder
from repro.optimize.online import BatchOutcome, OnlineOptimizer
from repro.persistence import DurableStore
from repro.utils.sync import mutator
from repro.votes.stream import CountPolicy
from repro.votes.types import Vote

if TYPE_CHECKING:  # annotation only; the engine is passed in, never built
    from repro.serving.engine import SimilarityEngine

__all__ = ["IngestItem", "VoteQueue", "OptimizerWorker", "DEFAULT_QUEUE_SIZE"]

logger = logging.getLogger(__name__)

#: Default bound of the ingest queue.  Small on purpose: the queue is a
#: hand-off buffer, not a spool — a deep queue only hides worker lag
#: that backpressure should surface to the caller.
DEFAULT_QUEUE_SIZE = 256


@dataclass(frozen=True)
class IngestItem:
    """One durable vote in flight between ingest and worker threads.

    Attributes
    ----------
    seq:
        WAL sequence assigned at log time (``None`` without a store).
    vote:
        The vote itself (immutable).
    links:
        The voted query's out-link mapping ``((entity, weight), ...)``
        captured on the ingest thread at submit time — the worker
        attaches the query to its shadow graph from this, and the WAL
        record carries the same links for recovery.
    enqueued_at:
        ``time.monotonic()`` at enqueue, for the staleness gauge.
    """

    seq: "int | None"
    vote: Vote
    links: "tuple[tuple, ...] | None"
    enqueued_at: float


class VoteQueue:
    """Bounded, closable hand-off queue between ingest and worker.

    One :class:`threading.Condition` (``_cond``) guards both the item
    deque and the closed latch; every waiter is woken with
    ``notify_all`` on every state change, which is the simple-and-right
    choice for a two-thread hand-off (there is at most one producer and
    one consumer to wake).
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_QUEUE_SIZE,
        *,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if maxsize < 1:
            raise WorkerError(f"queue maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._cond = threading.Condition()
        self._items: deque[IngestItem] = deque()
        self._closed = False
        registry = registry if registry is not None else get_registry()
        self._g_depth = registry.gauge("optimize_queue_depth")
        self._m_blocked = registry.counter("optimize_ingest_blocked_total")

    @property
    def maxsize(self) -> int:
        """The queue's capacity bound."""
        return self._maxsize

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @mutator
    def put(self, item: IngestItem, *, timeout: "float | None" = None) -> None:
        """Enqueue ``item``, blocking while the queue is full.

        Raises :class:`~repro.errors.WorkerError` if the queue is (or
        becomes) closed, or if ``timeout`` seconds elapse against
        sustained backpressure — the vote is already durable in the WAL
        at that point, so the caller may retry or surface the pushback.
        """
        with self._cond:
            if len(self._items) >= self._maxsize and not self._closed:
                # Count the backpressure event once per blocked put, not
                # once per wakeup, so the counter reads as "submissions
                # that had to wait".
                self._m_blocked.inc()
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while len(self._items) >= self._maxsize and not self._closed:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise WorkerError(
                            f"vote queue full ({self._maxsize} items) for "
                            f"{timeout:.3f}s; the optimizer worker is not "
                            f"keeping up"
                        )
                    self._cond.wait(remaining)
            if self._closed:
                raise WorkerError("vote queue is closed")
            self._items.append(item)
            self._g_depth.set(float(len(self._items)))
            self._cond.notify_all()

    def get_batch(
        self, max_items: int, *, timeout: "float | None" = None
    ) -> list[IngestItem]:
        """Dequeue up to ``max_items``, waiting for at least one.

        Returns an empty list on timeout or when the queue is closed
        and drained — the two conditions the worker loop distinguishes
        via :attr:`closed`.
        """
        if max_items < 1:
            raise WorkerError(f"max_items must be >= 1, got {max_items}")
        with self._cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items and not self._closed:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return []
                self._cond.wait(remaining)
            batch: list[IngestItem] = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            self._g_depth.set(float(len(self._items)))
            if batch:
                self._cond.notify_all()
            return batch

    def oldest_enqueued_at(self) -> "float | None":
        """Monotonic enqueue time of the head item (``None`` if empty)."""
        with self._cond:
            if not self._items:
                return None
            return self._items[0].enqueued_at

    @mutator
    def close(self) -> None:
        """Refuse further puts; wake every waiter.  Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class OptimizerWorker:
    """Background thread that solves vote batches off the serve path.

    Parameters
    ----------
    aug:
        The *live* augmented graph (the one the engine serves).  The
        worker deep-copies it once for its private shadow and only ever
        touches the live graph inside :meth:`SimilarityEngine.publish`.
    engine:
        The serving engine to publish weight-patch epochs through; may
        be ``None`` (batch solves still run, patches land on the live
        graph directly — useful in tests).
    store:
        Optional :class:`~repro.persistence.DurableStore`: votes are
        WAL-logged on the ingest thread before enqueue, and each
        publication checkpoints the shadow graph.
    policy / split_merge_threshold / options:
        Forwarded to the internal :class:`OnlineOptimizer` — identical
        meaning to single-threaded durable mode, and recovery requires
        the same values.
    queue_size / max_batch / poll_interval:
        Ingest-queue bound, max items drained per loop iteration, and
        the queue-wait timeout that doubles as the lag-gauge refresh
        cadence.

    The worker owns its internal optimizer exclusively (thread-confined
    to the worker thread once started); callers interact only through
    :meth:`submit`, :meth:`stop`, and the read-only properties.
    """

    def __init__(
        self,
        aug: AugmentedGraph,
        *,
        engine: "SimilarityEngine | None" = None,
        store: "DurableStore | None" = None,
        policy: "object | None" = None,
        split_merge_threshold: int = 15,
        options: "dict | None" = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        max_batch: int = 64,
        poll_interval: float = 0.05,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self._aug = aug
        self._engine = engine
        self._store = store
        # The shadow: solver scratch space.  Deep copy now; kept in sync
        # with the live graph's KG weights by the publications themselves.
        self._online = OnlineOptimizer(
            aug.copy(),
            policy=policy if policy is not None else CountPolicy(),
            split_merge_threshold=split_merge_threshold,
            options=options if options is not None else {},
        )
        self.registry = registry if registry is not None else get_registry()
        self.queue = VoteQueue(queue_size, registry=self.registry)
        self._max_batch = max_batch
        self._poll_interval = poll_interval
        self._thread: "threading.Thread | None" = None
        self._stop_event = threading.Event()
        self._drain = True
        self._last_error: "BaseException | None" = None
        self._m_ingest = self.registry.counter("optimize_ingest_votes_total")
        self._m_epochs = self.registry.counter(
            "optimize_epochs_published_total"
        )
        self._m_errors = self.registry.counter("optimize_worker_errors_total")
        self._h_publish = self.registry.histogram(
            "optimize_epoch_publish_seconds"
        )
        self._g_lag_votes = self.registry.gauge("optimize_worker_lag_votes")
        self._g_lag_seconds = self.registry.gauge(
            "optimize_worker_lag_seconds"
        )

    # ------------------------------------------------------------------
    # construction from a recovered optimizer
    # ------------------------------------------------------------------
    @classmethod
    def from_online(
        cls,
        online: OnlineOptimizer,
        *,
        engine: "SimilarityEngine | None" = None,
        **config: object,
    ) -> "OptimizerWorker":
        """Adopt a recovered single-threaded optimizer's state.

        Builds a worker over ``online.aug`` (which *is* the live graph
        after :meth:`OnlineOptimizer.recover`) with the same policy,
        threshold, and solver options, carries the batch history over
        so ``batch_index`` keeps counting, and re-buffers the recovered
        un-flushed pending votes (with their WAL sequences) into the
        worker's shadow optimizer.  Call before :meth:`start`.
        """
        worker = cls(
            online.aug,
            engine=engine,
            store=online.store,
            policy=online.policy,
            split_merge_threshold=online.split_merge_threshold,
            options=dict(online.options),
            **config,  # type: ignore[arg-type]
        )
        worker._online.history.extend(online.history)
        seqs = online.pending_seqs
        for index, vote in enumerate(online.pending.votes):
            seq = seqs[index] if index < len(seqs) else None
            links = worker._capture_links(vote)
            worker._buffer_item(
                IngestItem(
                    seq=seq,
                    vote=vote,
                    links=links,
                    enqueued_at=time.monotonic(),
                )
            )
        return worker

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "OptimizerWorker":
        """Start the worker thread.  One-shot: a stopped worker stays stopped."""
        if self._thread is not None:
            raise WorkerError("optimizer worker already started")
        if self.queue.closed:
            raise WorkerError("optimizer worker cannot restart a closed queue")
        self._thread = threading.Thread(
            target=self._run, name="repro-optimizer-worker", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True, timeout: "float | None" = 30.0) -> None:
        """Close the queue and join the worker thread.

        With ``drain=True`` (default) the worker finishes ingesting
        everything already queued, then solves and publishes any
        leftover partial batch.  With ``drain=False`` it exits at the
        next loop check; un-ingested votes survive in the WAL and a
        recovery replays them.
        """
        if self._thread is None:
            self.queue.close()
            return
        self._drain = drain
        self._stop_event.set()
        self.queue.close()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise WorkerError(
                f"optimizer worker did not stop within {timeout}s"
            )
        self._thread = None

    def __enter__(self) -> "OptimizerWorker":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop(drain=True)

    # ------------------------------------------------------------------
    # ingest side (caller thread)
    # ------------------------------------------------------------------
    @mutator
    def submit(self, vote: Vote, *, timeout: "float | None" = None) -> "int | None":
        """Durably log ``vote`` and enqueue it for the worker.

        Log before enqueue: the WAL append (with the voted query's
        out-links) happens on this thread, so once ``submit`` returns —
        and even if it then raises on a full queue — no crash can lose
        the vote.  Returns the WAL sequence (``None`` without a store).
        Blocks under backpressure; see :meth:`VoteQueue.put`.
        """
        if not isinstance(vote, Vote):
            raise VoteError(f"expected a Vote, got {type(vote).__name__}")
        links = self._capture_links(vote)
        seq = (
            self._store.log_vote(vote, links=links)
            if self._store is not None
            else None
        )
        self.queue.put(
            IngestItem(
                seq=seq,
                vote=vote,
                links=links,
                enqueued_at=time.monotonic(),
            ),
            timeout=timeout,
        )
        self._m_ingest.inc()
        return seq

    def _capture_links(self, vote: Vote) -> "tuple[tuple, ...] | None":
        """Snapshot the voted query's out-links off the live graph."""
        if not self._aug.is_query(vote.query):
            return None
        return tuple(self._aug.query_links(vote.query).items())

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            if self._stop_event.is_set() and not self._drain:
                break
            batch = self.queue.get_batch(
                self._max_batch, timeout=self._poll_interval
            )
            if not batch:
                if self._stop_event.is_set() or self.queue.closed:
                    break
                self._refresh_lag()
                continue
            for item in batch:
                try:
                    self._buffer_item(item)
                except Exception as exc:
                    self._note_error(exc)
            self._refresh_lag()
        if self._drain:
            try:
                self.flush()
            except Exception as exc:
                self._note_error(exc)
            self._refresh_lag()

    def _buffer_item(self, item: IngestItem) -> None:
        """Attach the voted query to the shadow, buffer, maybe publish."""
        shadow = self._online.aug
        if item.links is not None:
            # The solve must see the links the vote was cast against.
            # Only touch the shadow when they actually differ (a
            # replaced, re-asked question): a gratuitous detach/attach
            # would move the query to the end of the node ordering and
            # de-sync the solver's float arithmetic from what a
            # single-threaded run over the original graph produces.
            query = item.vote.query
            if not shadow.is_query(query):
                shadow.add_query(query, dict(item.links))
            elif tuple(shadow.query_links(query).items()) != item.links:
                shadow.remove_query(query)
                shadow.add_query(query, dict(item.links))
        outcome = self._online.buffer(item.vote, seq=item.seq)
        if outcome is not None:
            self._publish(outcome)

    @mutator
    def flush(self) -> "BatchOutcome | None":
        """Solve and publish whatever is pending in the shadow optimizer.

        Worker-thread (or stopped-worker) use only — the internal
        optimizer is thread-confined.  The drain path calls this for
        the final partial batch; tests call it on a never-started
        worker to drive batches synchronously.
        """
        outcome = self._online.flush()
        if outcome is not None:
            self._publish(outcome)
        return outcome

    def _publish(self, outcome: BatchOutcome) -> None:
        """Apply one solved batch to the live graph as an atomic epoch."""
        shadow = self._online.aug
        # Diff the graphs instead of trusting ``outcome.edge_keys``:
        # that list is tolerance-filtered for reporting, and
        # normalization can nudge out-edges that were never solver
        # variables — a sub-tolerance drift left unpublished would
        # desync the live graph from the shadow bitwise.
        patch = [
            (edge.key[0], edge.key[1], edge.weight)
            for edge in shadow.kg_edges()
            if self._aug.kg_weight(*edge.key) != edge.weight
        ]
        started = time.perf_counter()
        with trace_span("optimize.publish") as span:

            def apply() -> None:
                for head, tail, weight in patch:
                    self._aug.set_kg_weight(head, tail, weight)

            if self._engine is not None:
                epoch = self._engine.publish(apply)
            else:
                apply()
                epoch = None
            if span.recording:
                span.set_attrs(
                    batch_index=outcome.batch_index,
                    edges=len(patch),
                    epoch=epoch,
                )
        elapsed = time.perf_counter() - started
        self._h_publish.observe(elapsed)
        self._m_epochs.inc()
        # Snapshot the *shadow*: its KG weights now equal the live
        # graph's, and the queries it lacks (transient serve-time
        # questions) are re-attachable from the WAL links — so the
        # checkpoint never has to touch the live graph.
        if self._store is not None and outcome.last_seq is not None:
            self._store.checkpoint(shadow, outcome.last_seq)
        rec = active_recorder()
        if rec is not None:
            rec.record_timed(
                "optimize.publish",
                elapsed,
                batch_index=outcome.batch_index,
                num_votes=outcome.num_votes,
                changed_edges=outcome.changed_edges,
                epoch=epoch,
                last_seq=outcome.last_seq,
            )

    def _refresh_lag(self) -> None:
        depth = len(self.queue)
        self._g_lag_votes.set(float(depth + len(self._online.pending)))
        oldest = self.queue.oldest_enqueued_at()
        if oldest is None:
            self._g_lag_seconds.set(0.0)
        else:
            self._g_lag_seconds.set(max(0.0, time.monotonic() - oldest))

    def _note_error(self, exc: BaseException) -> None:
        self._last_error = exc
        self._m_errors.inc()
        logger.warning("optimizer worker batch failed: %s", exc, exc_info=exc)
        rec = active_recorder()
        if rec is not None:
            rec.trigger("worker_error", detail=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def history(self) -> list[BatchOutcome]:
        """Per-batch outcomes, in publication order (shared list; GIL-read)."""
        return self._online.history

    @property
    def last_error(self) -> "BaseException | None":
        """The most recent exception the worker loop swallowed."""
        return self._last_error

    @property
    def pending_votes(self) -> int:
        """Votes buffered in the shadow optimizer, awaiting a batch boundary."""
        return len(self._online.pending)

    @property
    def shadow(self) -> AugmentedGraph:
        """The worker's private solver graph (read-only for callers)."""
        return self._online.aug

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._thread is not None else "stopped"
        return (
            f"<OptimizerWorker {state} queue={len(self.queue)} "
            f"pending={self.pending_votes} batches={len(self.history)}>"
        )
