"""Versioned, production-style similarity serving.

The seed code treated the augmented graph as a per-call throwaway:
every ``ask()`` rebuilt the CSR adjacency matrix from Python dicts.
This subpackage treats it as a long-lived serving asset instead:

- :mod:`repro.serving.params` — :class:`SimilarityParams`, the single
  validated bundle of the similarity parameters ``(k, L, c)`` threaded
  through the whole stack;
- :mod:`repro.serving.engine` — :class:`SimilarityEngine`, which owns a
  versioned cached sparse adjacency matrix maintained incrementally
  from graph mutation events (in-place weight patches, CSR row appends
  for new documents, zero-cost query attach/detach), a bounded LRU of
  per-query score vectors, batched serving, and observability counters;
- :mod:`repro.serving.delta` — :class:`DeltaCorrector`, the exact
  delta-propagation correction that keeps the engine's cached score
  vectors warm across sparse optimizer weight patches instead of
  cold-invalidating the LRU;
- :mod:`repro.serving.worker` — :class:`OptimizerWorker` and
  :class:`VoteQueue`, the concurrent ingest path: votes are WAL-logged
  on the serve thread, solved on a background thread against a shadow
  graph, and published to the engine as atomic weight-patch epochs.
"""

from repro.serving.params import (
    DEFAULT_K,
    SimilarityParams,
    resolve_similarity_params,
)
from repro.serving.delta import (
    DEFAULT_DELTA_DENSITY_THRESHOLD,
    DeltaCorrector,
    DeltaFallbackError,
)
from repro.serving.engine import (
    DEFAULT_CACHE_SIZE,
    EngineStats,
    SimilarityEngine,
)
#: Re-exported lazily (PEP 562): :mod:`repro.serving.worker` imports the
#: optimize/votes stack, which itself imports :mod:`repro.serving.params`
#: during package init — an eager import here would be circular.
_WORKER_EXPORTS = frozenset(
    {"DEFAULT_QUEUE_SIZE", "IngestItem", "OptimizerWorker", "VoteQueue"}
)


def __getattr__(name: str) -> object:
    if name in _WORKER_EXPORTS:
        from repro.serving import worker

        return getattr(worker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_K",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_DELTA_DENSITY_THRESHOLD",
    "DEFAULT_QUEUE_SIZE",
    "IngestItem",
    "OptimizerWorker",
    "VoteQueue",
    "SimilarityParams",
    "resolve_similarity_params",
    "DeltaCorrector",
    "DeltaFallbackError",
    "EngineStats",
    "SimilarityEngine",
]
