"""Similarity-evaluation parameters, bundled.

The trio ``(k, max_length, restart_prob)`` — the list length, the walk
pruning threshold ``L``, and the restart probability ``c`` — used to be
copy-pasted as three keyword arguments through every layer of the stack
(``QASystem``, ``rank_answers``, the evaluation harness, and the three
optimization drivers).  :class:`SimilarityParams` replaces the triple
with one validated, immutable value object that is threaded through all
of them, and since the backend registry it also carries the kernel
selection (:attr:`SimilarityParams.backend` plus the push backend's
:attr:`SimilarityParams.push_tolerance`).

The PR-1 era bare keyword arguments went through a one-release
``DeprecationWarning`` shim and are now hard errors:
:func:`resolve_similarity_params` raises ``TypeError`` with a migration
hint when any of them is passed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.similarity.inverse_pdistance import (
    DEFAULT_MAX_LENGTH,
    DEFAULT_RESTART_PROB,
)
from repro.similarity.push import DEFAULT_PUSH_TOLERANCE
from repro.utils.validation import check_fraction

#: Paper default top-k list length (Section VII-A1).
DEFAULT_K = 20

#: Default propagation backend (the reference dense dynamic program).
DEFAULT_BACKEND = "dense"


@dataclass(frozen=True)
class SimilarityParams:
    """Parameters of the truncated inverse-P-distance similarity.

    Parameters
    ----------
    k:
        Length of returned answer lists (paper default 20).
    max_length:
        The walk pruning threshold ``L`` (Section IV-A, default 5).
    restart_prob:
        The restart probability ``c`` (Section III-A, default 0.15).
    backend:
        Name of the propagation backend resolved through
        :func:`repro.similarity.backend.resolve_backend` —
        ``"dense"`` (default, the reference DP) or ``"push"`` (the
        sparse local-push evaluator); third-party registrations are
        selectable by their registered name.  Validated against the
        registry at resolution time, not here, so params objects can be
        built before a plugin backend registers itself.
    push_tolerance:
        The push backend's per-target absolute error budget ε
        (``0`` = exact push; ignored by other backends).

    The object is frozen and hashable, so it can key caches and travel
    through multiprocessing payloads unchanged.
    """

    k: int = DEFAULT_K
    max_length: int = DEFAULT_MAX_LENGTH
    restart_prob: float = DEFAULT_RESTART_PROB
    backend: str = DEFAULT_BACKEND
    push_tolerance: float = DEFAULT_PUSH_TOLERANCE

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be ≥ 1, got {self.k}")
        if self.max_length < 1:
            raise ValueError(
                f"max_length must be at least 1, got {self.max_length}"
            )
        check_fraction("restart_prob", self.restart_prob)
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError(
                f"backend must be a non-empty backend name, got "
                f"{self.backend!r}"
            )
        if not self.push_tolerance >= 0.0:  # also rejects NaN
            raise ValueError(
                f"push_tolerance must be ≥ 0, got {self.push_tolerance!r}"
            )

    def replace(self, **changes) -> "SimilarityParams":
        """A copy with the given fields replaced (validated again)."""
        return replace(self, **changes)


def resolve_similarity_params(
    params: "SimilarityParams | None" = None,
    *,
    k: "int | None" = None,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    default: "SimilarityParams | None" = None,
) -> SimilarityParams:
    """Resolve the effective :class:`SimilarityParams` for a call.

    Returns ``params`` when given, else ``default`` (or the
    paper-default :class:`SimilarityParams`).  The legacy bare keyword
    arguments ``k``/``max_length``/``restart_prob`` — deprecated since
    the params migration — are now rejected with ``TypeError`` carrying
    a migration hint.
    """
    legacy = {
        name: value
        for name, value in (
            ("k", k),
            ("max_length", max_length),
            ("restart_prob", restart_prob),
        )
        if value is not None
    }
    if legacy:
        migrated = ", ".join(
            f"{name}={value!r}" for name, value in sorted(legacy.items())
        )
        raise TypeError(
            f"the legacy keyword arguments {sorted(legacy)} were removed; "
            f"pass params=SimilarityParams({migrated}) instead "
            f"(or params=<your params>.replace({migrated}))"
        )
    if params is not None:
        return params
    return default if default is not None else SimilarityParams()
