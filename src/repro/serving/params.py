"""Similarity-evaluation parameters, bundled.

The trio ``(k, max_length, restart_prob)`` — the list length, the walk
pruning threshold ``L``, and the restart probability ``c`` — used to be
copy-pasted as three keyword arguments through every layer of the stack
(``QASystem``, ``rank_answers``, the evaluation harness, and the three
optimization drivers).  :class:`SimilarityParams` replaces the triple
with one validated, immutable value object that is threaded through all
of them; the old keyword arguments keep working behind a deprecation
shim (:func:`resolve_similarity_params`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.similarity.inverse_pdistance import (
    DEFAULT_MAX_LENGTH,
    DEFAULT_RESTART_PROB,
)
from repro.utils.validation import check_fraction

#: Paper default top-k list length (Section VII-A1).
DEFAULT_K = 20


@dataclass(frozen=True)
class SimilarityParams:
    """Parameters of the truncated inverse-P-distance similarity.

    Parameters
    ----------
    k:
        Length of returned answer lists (paper default 20).
    max_length:
        The walk pruning threshold ``L`` (Section IV-A, default 5).
    restart_prob:
        The restart probability ``c`` (Section III-A, default 0.15).

    The object is frozen and hashable, so it can key caches and travel
    through multiprocessing payloads unchanged.
    """

    k: int = DEFAULT_K
    max_length: int = DEFAULT_MAX_LENGTH
    restart_prob: float = DEFAULT_RESTART_PROB

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be ≥ 1, got {self.k}")
        if self.max_length < 1:
            raise ValueError(
                f"max_length must be at least 1, got {self.max_length}"
            )
        check_fraction("restart_prob", self.restart_prob)

    def replace(self, **changes) -> "SimilarityParams":
        """A copy with the given fields replaced (validated again)."""
        return replace(self, **changes)


def resolve_similarity_params(
    params: "SimilarityParams | None" = None,
    *,
    k: "int | None" = None,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    default: "SimilarityParams | None" = None,
    warn: bool = True,
    stacklevel: int = 3,
) -> SimilarityParams:
    """Merge new-style ``params`` with legacy keyword arguments.

    Precedence: an explicit ``params`` wins (combining it with legacy
    keywords raises ``TypeError`` — the call is ambiguous); legacy
    keywords override ``default`` field-by-field and emit a
    ``DeprecationWarning``; otherwise ``default`` (or the paper-default
    :class:`SimilarityParams`) is returned unchanged.
    """
    legacy = {
        name: value
        for name, value in (
            ("k", k),
            ("max_length", max_length),
            ("restart_prob", restart_prob),
        )
        if value is not None
    }
    if params is not None:
        if legacy:
            raise TypeError(
                "pass either params=SimilarityParams(...) or the legacy "
                f"keyword arguments {sorted(legacy)}, not both"
            )
        return params
    base = default if default is not None else SimilarityParams()
    if not legacy:
        return base
    if warn:
        warnings.warn(
            f"the keyword arguments {sorted(legacy)} are deprecated; pass "
            "params=SimilarityParams(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    return base.replace(**legacy)
