"""Delta propagation: exact score corrections for sparse weight patches.

Every optimizer pass patches a *sparse* set of knowledge-graph edges
(Table III: a handful of weights move per vote batch), yet the serving
engine used to cold-invalidate its whole score LRU on any weight change
— the serve-vote-optimize-serve loop paid a full ``O(L·|E|)`` truncated
inverse-P-distance (Eq. 7–9) per cached query right after each solve,
exactly when traffic is hottest.

This module computes the *exact* correction instead.  Write the patched
matrix as ``M' = M + Δ`` with ``Δ`` supported on the changed edges.
Expanding the propagation powers around ``M^t``:

    M'^t − M^t = Σ_{a+b=t−1} M'^a · Δ · M^b

so for a cached score vector (seed ``p``, truncation ``L``, restart
probability ``c``, damping ``d = 1 − c``)

    s' − s = Σ_{a+b ≤ L−2}  c·d^(a+b+2) · (M'^a · Δ · (M^b p))[targets]

Two small Krylov-style bases make every term cheap, and both are
**shared across all cached entries** for one patch:

- a *backward* basis ``C_b = S_H · M^b`` (rows selected at ``H``, the
  head columns of ``Δ``), recovering the old masses ``(M^b p)[H]`` that
  ``Δ`` multiplies — built against the pre-patch matrix via
  ``C·M = C·M' − C·Δ`` without materializing ``M``; its support grows
  along the L-hop *in*-neighborhood of the changed edges;
- a *forward* basis ``B_a = S_T · (M'ᵀ)^a`` (rows selected at ``T``,
  the tail rows of ``Δ``), carrying each unit of injected correction
  mass to the targets; its support grows along the L-hop
  *out*-neighborhood of the changed edges.

Work therefore scales with the changed edges' L-hop neighborhood, not
``|E|`` — the localization argument of edge-based local push for
Personalized PageRank (Wang et al.), in the few-edge-perturbation
regime that PageRank edge-selection work (Csáji et al.) identifies as
the common case.  Per cached entry, the marginal cost is a handful of
tiny dense products.

When the touched frontier outgrows a density budget (a multiple of
``|E|``), localization has failed and :class:`DeltaFallbackError` tells
the engine to fall back to full propagation with an honest epoch bump —
correction results are tolerance-equal to a cold recompute (the float
reassociation is contract-checked via
:func:`repro.devtools.contracts.check_delta_scores`); the fallback path
stays bitwise.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import sparse

__all__ = [
    "DEFAULT_DELTA_DENSITY_THRESHOLD",
    "DeltaFallbackError",
    "DeltaCorrector",
]

#: Fallback budget on the correction frontier, as a multiple of the
#: matrix's edge count: building both bases costs at most
#: ``~2·L·threshold·|E|`` flops, shared across every cached entry — a
#: clear win over per-entry ``L·|E|`` cold recomputes for any warm cache
#: (default bound 256 entries), while still refusing patches so dense
#: that "local" push would touch the whole graph several times over.
DEFAULT_DELTA_DENSITY_THRESHOLD = 8.0


class DeltaFallbackError(Exception):
    """The correction frontier outgrew the density budget.

    Not a :class:`~repro.errors.ReproError`: this is control flow, not
    failure — the engine catches it and falls back to full propagation
    (cold invalidation with an honest epoch bump).
    """


class DeltaCorrector:
    """Exact score-vector corrections for one sparse weight patch.

    Parameters
    ----------
    matrix:
        The **post-patch** CSR matrix ``M'`` (the engine's layout:
        ``M'[i, j] = w(v_j, v_i)``).
    rows, cols, values:
        The patch ``Δ`` as parallel arrays: ``Δ[rows[k], cols[k]] =
        values[k]`` with ``values = new − old`` (already coalesced — at
        most one entry per position, zero deltas dropped).
    max_length:
        The largest truncation ``L`` among the cached entries to be
        corrected; bases are built up to depth ``L − 1``.
    density_threshold:
        Fallback budget as a multiple of ``matrix.nnz``; see
        :data:`DEFAULT_DELTA_DENSITY_THRESHOLD`.

    Raises
    ------
    DeltaFallbackError
        When ``Δ`` itself or the growing basis frontier exceeds the
        density budget.
    """

    def __init__(
        self,
        matrix: sparse.csr_matrix,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        *,
        max_length: int,
        density_threshold: float = DEFAULT_DELTA_DENSITY_THRESHOLD,
    ) -> None:
        self._n = int(matrix.shape[0])
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=float)
        budget = float(density_threshold) * max(int(matrix.nnz), 1)
        if values.size > budget:
            raise DeltaFallbackError(
                f"{values.size} changed edges exceed the density budget "
                f"{budget:.0f} ({density_threshold:g} x {matrix.nnz} edges)"
            )
        #: Unique tail rows (where Δ injects correction mass) and unique
        #: head columns (whose old masses Δ multiplies), with per-entry
        #: local indices into each.
        self._tails, self._tail_local = np.unique(rows, return_inverse=True)
        self._heads, self._head_local = np.unique(cols, return_inverse=True)
        self._values = values
        self._steps = max(0, int(max_length) - 1)
        self._fwd: list[sparse.csr_matrix] = []
        self._back: list[sparse.csr_matrix] = []
        self._target_cache: dict[tuple, list[np.ndarray]] = {}
        #: Peak combined nnz of the two bases (observability).
        self.frontier_nnz = 0
        if self._steps == 0 or values.size == 0:
            return
        num_tails = len(self._tails)
        num_heads = len(self._heads)
        fwd = sparse.csr_matrix(
            (np.ones(num_tails), (np.arange(num_tails), self._tails)),
            shape=(num_tails, self._n),
        )
        back = sparse.csr_matrix(
            (np.ones(num_heads), (np.arange(num_heads), self._heads)),
            shape=(num_heads, self._n),
        )
        delta = sparse.csr_matrix(
            (values, (rows, cols)), shape=(self._n, self._n)
        )
        # Row-major products against M'ᵀ walk *out*-edges row-by-row, so
        # each step only touches the current support's out-neighborhood.
        matrix_t = matrix.T.tocsr()
        self._fwd.append(fwd)
        self._back.append(back)
        self.frontier_nnz = int(fwd.nnz + back.nnz)
        for _ in range(self._steps - 1):
            fwd = (fwd @ matrix_t).tocsr()
            # The backward basis advances through the *old* matrix,
            # reconstructed on the fly: C·M = C·(M' − Δ).
            back = (back @ matrix - back @ delta).tocsr()
            touched = int(fwd.nnz + back.nnz)
            self.frontier_nnz = max(self.frontier_nnz, touched)
            if touched > budget:
                raise DeltaFallbackError(
                    f"correction frontier reached {touched} nonzeros, over "
                    f"the density budget {budget:.0f} "
                    f"({density_threshold:g} x {matrix.nnz} edges)"
                )
            self._fwd.append(fwd)
            self._back.append(back)

    @property
    def num_changed_edges(self) -> int:
        """Nonzero entries of ``Δ``."""
        return int(self._values.size)

    def _target_slices(
        self, targets_key: "tuple | None", target_idx: np.ndarray
    ) -> list[np.ndarray]:
        """Dense ``B_a[:, targets]`` blocks, cached per target tuple.

        Cached entries overwhelmingly share one target list (all answer
        nodes), so the column slice of every forward basis is computed
        once per patch, not once per entry.
        """
        key = targets_key if targets_key is not None else tuple(
            int(i) for i in target_idx
        )
        slices = self._target_cache.get(key)
        if slices is None:
            slices = [
                np.asarray(basis[:, target_idx].toarray())
                for basis in self._fwd
            ]
            self._target_cache[key] = slices
        return slices

    def correction(
        self,
        seed_index: np.ndarray,
        seed_weights: np.ndarray,
        target_idx: np.ndarray,
        *,
        max_length: int,
        restart_prob: float,
        targets_key: "tuple | None" = None,
    ) -> np.ndarray:
        """``s' − s`` at ``target_idx`` for one cached entry.

        Parameters
        ----------
        seed_index, seed_weights:
            The entry's seed vector ``p`` in sparse form (the query's
            out-link entity indices and weights).
        target_idx:
            Matrix indices of the entry's target nodes, aligned with
            the cached vector.
        max_length, restart_prob:
            The entry's own truncation ``L`` and restart probability
            ``c`` (``L`` must not exceed the corrector's build depth).
        targets_key:
            Optional hashable identity of the target tuple, used to
            share the dense forward-basis slices across entries.
        """
        out = np.zeros(len(target_idx))
        steps = min(max(0, int(max_length) - 1), self._steps)
        if int(max_length) - 1 > self._steps:
            raise ValueError(
                f"corrector built for max_length {self._steps + 1}, "
                f"asked to correct an entry with max_length {max_length}"
            )
        if steps == 0 or not self._fwd or seed_index.size == 0:
            return out
        seed = np.zeros(self._n)
        seed[seed_index] = seed_weights
        slices = self._target_slices(targets_key, target_idx)
        damping = 1.0 - restart_prob
        for b in range(steps):
            # Old walk mass at Δ's head columns: (M^b p)[H] = C_b · p.
            mass_heads = self._back[b] @ seed
            # Correction mass Δ·(M^b p), collapsed onto Δ's tail rows.
            source = np.zeros(len(self._tails))
            np.add.at(
                source,
                self._tail_local,
                self._values * mass_heads[self._head_local],
            )
            if not source.any():
                continue
            for a in range(steps - b):
                # Term t = a + b + 1 of Eq. 7-9's truncated sum carries
                # the walk-length factor c·(1−c)^(t+1).
                factor = restart_prob * damping ** (a + b + 2)
                out += factor * (source @ slices[a])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DeltaCorrector edges={self.num_changed_edges} "
            f"steps={self._steps} frontier={self.frontier_nnz}>"
        )
