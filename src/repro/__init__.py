"""repro — Optimizing Knowledge Graphs through Voting-based User Feedback.

A complete, from-scratch Python reproduction of Yang, Lin, Xu, Yang & He
(ICDE 2020): an interactive framework that refines knowledge-graph edge
weights from user votes by casting the adjustment as a signomial
geometric program over a truncated Personalized-PageRank similarity
(the *extended inverse P-distance*).

Quick start::

    from repro import (
        generate_helpdesk_corpus, build_knowledge_graph,
        QASystem, SimilarityParams,
    )

    corpus = generate_helpdesk_corpus(seed=0)
    kg = build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)
    system = QASystem(kg, corpus.vocabulary, params=SimilarityParams(k=10))
    system.add_documents(corpus.document_texts())

    answers = system.ask("refund_0 not arriving", question_id="q0")
    system.vote("q0", best_doc=answers[2][0])   # a negative vote
    report = system.optimize(strategy="multi")  # adjust edge weights
    print(report.summary())
    print(system.serving_stats())               # engine cache counters

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.errors import ReproError
from repro.graph import (
    AugmentedGraph,
    WeightedDiGraph,
    helpdesk_graph,
    konect_like,
    random_digraph,
)
from repro.similarity import (
    PropagationBackend,
    available_backends,
    get_backend,
    inverse_pdistance,
    ppr_vector,
    rank_answers,
    random_walk_similarity,
    register_backend,
    resolve_backend,
)
from repro.votes import (
    GroundTruthOracle,
    Vote,
    VoteSet,
    filter_feasible,
    generate_synthetic_votes,
    generate_votes_from_oracle,
)
from repro.optimize import (
    solve_multi_vote,
    solve_single_votes,
    solve_split_merge,
)
from repro.qa import (
    EntityVocabulary,
    QASystem,
    build_knowledge_graph,
    generate_helpdesk_corpus,
    ir_rank,
)
from repro.eval import evaluate_test_set
from repro.eval.harness import vote_omega_avg
from repro.obs import (
    MetricsRegistry,
    get_registry,
    last_trace,
    metrics_to_prometheus,
    recent_traces,
    summary_table,
    trace_span,
)
from repro.serving import EngineStats, SimilarityEngine, SimilarityParams

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "WeightedDiGraph",
    "AugmentedGraph",
    "random_digraph",
    "konect_like",
    "helpdesk_graph",
    "ppr_vector",
    "inverse_pdistance",
    "random_walk_similarity",
    "rank_answers",
    "PropagationBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "resolve_backend",
    "Vote",
    "VoteSet",
    "generate_synthetic_votes",
    "generate_votes_from_oracle",
    "GroundTruthOracle",
    "filter_feasible",
    "solve_single_votes",
    "solve_multi_vote",
    "solve_split_merge",
    "EntityVocabulary",
    "generate_helpdesk_corpus",
    "build_knowledge_graph",
    "QASystem",
    "ir_rank",
    "evaluate_test_set",
    "vote_omega_avg",
    "SimilarityParams",
    "SimilarityEngine",
    "EngineStats",
    "MetricsRegistry",
    "get_registry",
    "trace_span",
    "last_trace",
    "recent_traces",
    "summary_table",
    "metrics_to_prometheus",
    "__version__",
]
