"""Similarity measures between nodes of the (augmented) knowledge graph.

Four evaluators, all measuring the paper's query–answer similarity
``S(v_q, v_a) = π_{v_q}(v_a)`` (Definition 1):

- :mod:`repro.similarity.ppr` — exact Personalized PageRank by power
  iteration or sparse linear solve (the reference implementation);
- :mod:`repro.similarity.inverse_pdistance` — the paper's extended
  inverse P-distance, truncated at walk length ``L`` (Section IV-A); a
  dynamic program equivalent to summing Eq. 7 over all ≤ L walks;
- :mod:`repro.similarity.random_walk` — the per-answer linear-equation
  baseline of [5] used in Table VI, plus a Monte-Carlo simulator;
- :mod:`repro.similarity.push` — a sparse local-push evaluator of the
  same truncated sum, touching only edges near the query, with a
  derived error budget;
- :mod:`repro.similarity.top_k` — ranked top-k answer lists with
  deterministic tie-breaking.

Kernel selection goes through :mod:`repro.similarity.backend`: the
:class:`~repro.similarity.backend.PropagationBackend` protocol plus a
name-keyed registry (``dense`` / ``push`` / ``ppr`` / ``random_walk``),
resolved from :attr:`repro.serving.params.SimilarityParams.backend`.
"""

from repro.similarity.ppr import ppr_scores, ppr_vector
from repro.similarity.inverse_pdistance import (
    inverse_pdistance,
    inverse_pdistance_batch,
    inverse_pdistance_single,
    similarity_profile,
)
from repro.similarity.random_walk import (
    monte_carlo_similarity,
    random_walk_similarity,
)
from repro.similarity.push import (
    DEFAULT_PUSH_TOLERANCE,
    PropagationResult,
    push_propagate,
)
from repro.similarity.backend import (
    PropagationBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.similarity.simrank import simrank, simrank_matrix
from repro.similarity.top_k import rank_answers, rank_position

__all__ = [
    "ppr_vector",
    "ppr_scores",
    "inverse_pdistance",
    "inverse_pdistance_batch",
    "inverse_pdistance_single",
    "similarity_profile",
    "random_walk_similarity",
    "monte_carlo_similarity",
    "DEFAULT_PUSH_TOLERANCE",
    "PropagationResult",
    "push_propagate",
    "PropagationBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "resolve_backend",
    "simrank",
    "simrank_matrix",
    "rank_answers",
    "rank_position",
]
