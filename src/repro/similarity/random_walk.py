"""Random-walk similarity baselines.

Two baselines accompany the extended inverse P-distance:

- :func:`random_walk_similarity` — the "linear equation group" method
  the paper attributes to [5] and races against in Table VI.  It solves
  one sparse linear system *per answer* (each answer is scored by an
  independent equation group), so its cost grows linearly with the
  answer-set size ``|A|`` — the scaling Table VI demonstrates — whereas
  the P-distance DP scores all answers with one propagation.
- :func:`monte_carlo_similarity` — a restart-walk simulator.  Useful as
  an independent stochastic cross-check of the exact evaluators (the
  property tests verify agreement within sampling error) and as a
  demonstration that ``S(v_q, v_a)`` really is the probability of a
  random walk being observed at the answer.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy.sparse import identity
from scipy.sparse.linalg import spsolve

from repro.errors import NodeNotFoundError, SimilarityError
from repro.graph.digraph import Node, WeightedDiGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction


def random_walk_similarity(
    graph: WeightedDiGraph,
    query: Node,
    answers: Iterable[Node],
    *,
    restart_prob: float = 0.15,
) -> dict[Node, float]:
    """Per-answer linear-equation-group similarity (the [5] baseline).

    For each answer ``a`` the method assembles and solves the equation
    group ``(I − (1 − c) M) π = c e_q`` and reads off ``π[a]``.  The
    solutions are identical across answers — that is the point: the
    baseline's per-answer solve is redundant work, and Table VI shows
    the cost growing linearly in ``|A|`` while the shared-propagation
    P-distance stays flat.
    """
    check_fraction("restart_prob", restart_prob)
    if not graph.has_node(query):
        raise NodeNotFoundError(query)
    answer_list = list(answers)
    index = graph.node_index()
    missing = [a for a in answer_list if a not in index]
    if missing:
        raise NodeNotFoundError(missing[0])

    n = len(index)
    matrix = graph.adjacency_matrix()
    preference = np.zeros(n)
    preference[index[query]] = 1.0

    scores: dict[Node, float] = {}
    for answer in answer_list:
        # One independent equation-group solve per answer, as in [5].
        system = identity(n, format="csc") - (1.0 - restart_prob) * matrix
        pi = spsolve(system.tocsc(), restart_prob * preference)
        scores[answer] = float(np.asarray(pi).ravel()[index[answer]])
    return scores


def monte_carlo_similarity(
    graph: WeightedDiGraph,
    query: Node,
    answers: Iterable[Node],
    *,
    restart_prob: float = 0.15,
    num_walks: int = 10_000,
    max_steps: int = 200,
    seed: "int | None | np.random.Generator" = None,
) -> dict[Node, float]:
    """Monte-Carlo estimate of ``S(v_q, v_a)`` by simulating walks.

    Each walk starts at the query; at every step it dies with the node's
    out-weight deficit or moves to an out-neighbour with probability
    equal to the edge weight.  Instead of sampling the geometric restart
    explicitly, the estimator accumulates the discount ``c (1 − c)^t``
    for every visit of an answer at step ``t`` — a Rao-Blackwellized
    version of restart sampling whose expectation is exactly the
    walk-sum of Eq. 7, with strictly lower variance.

    Parameters
    ----------
    num_walks:
        Number of independent simulations; the standard error decays as
        ``1/√num_walks``.
    max_steps:
        Hard cap per walk (the geometric restart ends walks long before
        this in practice).
    """
    check_fraction("restart_prob", restart_prob)
    if num_walks <= 0:
        raise ValueError(f"num_walks must be positive, got {num_walks}")
    if not graph.has_node(query):
        raise NodeNotFoundError(query)
    # Sampling interprets out-weights as transition probabilities, which
    # only makes sense when each node's out-weights sum to at most one.
    # Augmented graphs with unit answer links are super-stochastic: the
    # exact evaluators handle them as formal walk sums, but a sampler
    # cannot, so fail loudly instead of returning a biased estimate.
    for node in graph.nodes():
        if graph.out_weight_sum(node) > 1.0 + 1e-9:
            raise SimilarityError(
                f"monte_carlo_similarity requires a sub-stochastic graph; "
                f"node {node!r} has out-weight sum "
                f"{graph.out_weight_sum(node):.4f} > 1"
            )
    answer_list = list(answers)
    for answer in answer_list:
        if not graph.has_node(answer):
            raise NodeNotFoundError(answer)
    rng = ensure_rng(seed)
    answer_set = set(answer_list)
    totals = {answer: 0.0 for answer in answer_list}

    # Pre-extract transition tables for speed.
    neighbours: dict[Node, tuple[list[Node], np.ndarray]] = {}
    for node in graph.nodes():
        succ = graph.successors(node)
        if succ:
            targets = list(succ)
            weights = np.array([succ[t] for t in targets], dtype=float)
            neighbours[node] = (targets, weights)

    damping = 1.0 - restart_prob
    for _ in range(num_walks):
        node = query
        discount = restart_prob
        for _step in range(max_steps):
            entry = neighbours.get(node)
            if entry is None:
                break  # absorbed at a sink (answer nodes)
            targets, weights = entry
            total_weight = float(weights.sum())
            u = rng.uniform(0.0, 1.0)
            if u >= total_weight:
                break  # the walk dies with the out-mass deficit
            # u is uniform on [0, total_weight) given survival, so it can
            # index the cumulative weights directly.
            cumulative = np.cumsum(weights)
            node = targets[int(np.searchsorted(cumulative, u, side="right"))]
            discount *= damping
            if node in answer_set:
                totals[node] += discount
    return {answer: total / num_walks for answer, total in totals.items()}
