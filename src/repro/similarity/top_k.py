"""Ranked top-k answer lists.

Given a query node, the Q&A framework returns the top-k answers ordered
by similarity (Definition 1).  Ties are broken deterministically by the
answers' string representation so that experiments are reproducible
run-to-run — ties are common on synthetic graphs where several answers
can be exactly symmetric.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import EvaluationError
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import Node
from repro.serving.params import SimilarityParams, resolve_similarity_params
from repro.similarity.backend import resolve_backend


def rank_answers(
    aug: AugmentedGraph,
    query: Node,
    *,
    params: "SimilarityParams | None" = None,
    answers: "Iterable[Node] | None" = None,
    engine=None,
    k: "int | None" = None,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
) -> list[tuple[Node, float]]:
    """Return the top-k ``(answer, similarity)`` pairs for ``query``.

    Parameters
    ----------
    aug:
        The augmented graph.
    query:
        A query node of ``aug``.
    params:
        The :class:`~repro.serving.params.SimilarityParams` bundle
        (``k``, ``max_length``, ``restart_prob``).
    answers:
        Candidate answers; defaults to every answer node in the graph.
    engine:
        Optional :class:`~repro.serving.engine.SimilarityEngine`.  When
        given, scores come from the engine's cached/incremental matrix
        instead of a cold per-call adjacency rebuild; results are
        bitwise identical for the dense backend.
    k, max_length, restart_prob:
        Removed; passing any of them raises ``TypeError`` with a
        migration hint (use ``params`` instead).

    Notes
    -----
    Scores are sorted descending; exact ties are ordered by ``repr`` of
    the answer id, which is stable across runs and platforms.
    """
    params = resolve_similarity_params(
        params, k=k, max_length=max_length, restart_prob=restart_prob
    )
    if not aug.is_query(query):
        raise EvaluationError(f"{query!r} is not a query node of the augmented graph")
    if answers is not None:
        candidates = list(answers)
        # Entities and queries score plausibly under inverse P-distance
        # and would silently pollute the top-k, so reject them here.
        for candidate in candidates:
            if not aug.is_answer(candidate):
                raise EvaluationError(
                    f"candidate {candidate!r} is not an answer node of the "
                    f"augmented graph"
                )
    else:
        candidates = sorted(aug.answer_nodes, key=repr)
    if not candidates:
        raise EvaluationError("no candidate answers to rank")
    if engine is not None:
        scores = engine.scores_for_query(query, candidates, params=params)
    else:
        scores = resolve_backend(params).scores(
            aug.graph, query, candidates, params=params
        )
    ordered = sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))
    return ordered[: params.k]


def rank_position(
    ranked: Sequence[tuple[Node, float]] | Sequence[Node],
    answer: Node,
) -> int:
    """1-based position of ``answer`` in a ranked list.

    Accepts either ``(answer, score)`` pairs (as returned by
    :func:`rank_answers`) or a bare answer sequence.  Raises
    :class:`EvaluationError` when the answer is absent, because a silent
    sentinel would corrupt the rank-difference metric Ω (Definition 3).
    """
    for position, item in enumerate(ranked, start=1):
        candidate = item[0] if isinstance(item, tuple) else item
        if candidate == answer:
            return position
    raise EvaluationError(f"answer {answer!r} is not in the ranked list")


def scores_to_ranked_list(scores: Mapping[Node, float]) -> list[tuple[Node, float]]:
    """Sort a ``{answer: score}`` mapping into a deterministic ranked list."""
    return sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))
