"""Ranked top-k answer lists.

Given a query node, the Q&A framework returns the top-k answers ordered
by similarity (Definition 1).  Ties are broken deterministically by the
answers' string representation so that experiments are reproducible
run-to-run — ties are common on synthetic graphs where several answers
can be exactly symmetric.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import EvaluationError
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import Node
from repro.similarity.inverse_pdistance import (
    DEFAULT_MAX_LENGTH,
    DEFAULT_RESTART_PROB,
    inverse_pdistance,
)


def rank_answers(
    aug: AugmentedGraph,
    query: Node,
    *,
    k: int = 20,
    answers: "Iterable[Node] | None" = None,
    max_length: int = DEFAULT_MAX_LENGTH,
    restart_prob: float = DEFAULT_RESTART_PROB,
) -> list[tuple[Node, float]]:
    """Return the top-k ``(answer, similarity)`` pairs for ``query``.

    Parameters
    ----------
    aug:
        The augmented graph.
    query:
        A query node of ``aug``.
    k:
        List length (the paper's default top-k is 20).
    answers:
        Candidate answers; defaults to every answer node in the graph.
    max_length, restart_prob:
        Passed to the extended-inverse-P-distance evaluator.

    Notes
    -----
    Scores are sorted descending; exact ties are ordered by ``repr`` of
    the answer id, which is stable across runs and platforms.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not aug.is_query(query):
        raise EvaluationError(f"{query!r} is not a query node of the augmented graph")
    candidates = list(answers) if answers is not None else sorted(
        aug.answer_nodes, key=repr
    )
    if not candidates:
        raise EvaluationError("no candidate answers to rank")
    scores = inverse_pdistance(
        aug.graph,
        query,
        candidates,
        max_length=max_length,
        restart_prob=restart_prob,
    )
    ordered = sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))
    return ordered[:k]


def rank_position(
    ranked: Sequence[tuple[Node, float]] | Sequence[Node],
    answer: Node,
) -> int:
    """1-based position of ``answer`` in a ranked list.

    Accepts either ``(answer, score)`` pairs (as returned by
    :func:`rank_answers`) or a bare answer sequence.  Raises
    :class:`EvaluationError` when the answer is absent, because a silent
    sentinel would corrupt the rank-difference metric Ω (Definition 3).
    """
    for position, item in enumerate(ranked, start=1):
        candidate = item[0] if isinstance(item, tuple) else item
        if candidate == answer:
            return position
    raise EvaluationError(f"answer {answer!r} is not in the ranked list")


def scores_to_ranked_list(scores: Mapping[Node, float]) -> list[tuple[Node, float]]:
    """Sort a ``{answer: score}`` mapping into a deterministic ranked list."""
    return sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))
