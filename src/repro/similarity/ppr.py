"""Personalized PageRank (PPR).

The paper's Eq. 1: ``π_q = (1 − c) · M · π_q + c · u_q`` with restart
probability ``c ≈ 0.15`` and a one-hot preference vector at the query
node.  Two solution methods are provided:

- ``power``: the fixed-point iteration
  ``π ← (1 − c) M π + c u``, equivalently the Neumann series
  ``π = c Σ_t (1 − c)^t M^t u`` — the form that makes Theorem 1's
  equivalence with the extended inverse P-distance transparent;
- ``solve``: the direct sparse linear solve of ``(I − (1 − c) M) π = c u``.

On a sub-stochastic graph both converge/exist unconditionally.  The
augmented graphs of Section III-A can be locally super-stochastic
(entities carry answer links on top of their KG out-weights); the power
method detects divergence and raises :class:`ConvergenceError` instead
of silently returning garbage.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import identity
from scipy.sparse.linalg import spsolve

from repro.errors import ConvergenceError, NodeNotFoundError
from repro.graph.digraph import Node, WeightedDiGraph
from repro.utils.validation import check_fraction


def ppr_vector(
    graph: WeightedDiGraph,
    query: Node,
    *,
    restart_prob: float = 0.15,
    method: str = "power",
    tol: float = 1e-12,
    max_iter: int = 10_000,
) -> dict[Node, float]:
    """Compute the full PPR vector ``π_query`` as ``{node: score}``.

    Parameters
    ----------
    graph:
        The (augmented) graph.
    query:
        The preference node (``u`` is one-hot at this node).
    restart_prob:
        The restart probability ``c`` (paper default 0.15).
    method:
        ``"power"`` (fixed-point iteration) or ``"solve"`` (direct
        sparse solve).
    tol, max_iter:
        Power-iteration stopping criteria (ignored by ``"solve"``).

    Raises
    ------
    ConvergenceError
        If the power iteration diverges or fails to reach ``tol`` within
        ``max_iter`` sweeps.
    """
    check_fraction("restart_prob", restart_prob)
    if not graph.has_node(query):
        raise NodeNotFoundError(query)
    index = graph.node_index()
    n = len(index)
    matrix = graph.adjacency_matrix()
    preference = np.zeros(n)
    preference[index[query]] = 1.0

    if method == "solve":
        system = identity(n, format="csc") - (1.0 - restart_prob) * matrix
        pi = spsolve(system.tocsc(), restart_prob * preference)
        pi = np.asarray(pi).ravel()
    elif method == "power":
        pi = restart_prob * preference
        damping = 1.0 - restart_prob
        for _ in range(max_iter):
            nxt = damping * (matrix @ pi) + restart_prob * preference
            delta = float(np.abs(nxt - pi).max())
            pi = nxt
            if not np.isfinite(delta) or delta > 1e6:
                raise ConvergenceError(
                    "PPR power iteration diverged; the graph is too "
                    "super-stochastic for a stationary solution"
                )
            if delta < tol:
                break
        else:
            raise ConvergenceError(
                f"PPR power iteration did not reach tol={tol} in {max_iter} sweeps"
            )
    else:
        raise ValueError(f"unknown method {method!r}; expected 'power' or 'solve'")

    nodes = list(index)
    return {node: float(pi[index[node]]) for node in nodes}


def ppr_scores(
    graph: WeightedDiGraph,
    query: Node,
    answers: "list[Node] | tuple[Node, ...]",
    *,
    restart_prob: float = 0.15,
    method: str = "power",
    tol: float = 1e-12,
    max_iter: int = 10_000,
) -> dict[Node, float]:
    """PPR similarity of ``query`` to each node in ``answers``.

    A thin wrapper over :func:`ppr_vector` that projects onto the answer
    nodes (Definition 1: ``S(v_q, v_a) = π_{v_q, v_a}``).
    """
    vector = ppr_vector(
        graph,
        query,
        restart_prob=restart_prob,
        method=method,
        tol=tol,
        max_iter=max_iter,
    )
    missing = [a for a in answers if a not in vector]
    if missing:
        raise NodeNotFoundError(missing[0])
    return {answer: vector[answer] for answer in answers}
