"""The extended inverse P-distance (Section IV-A).

Eq. 7 defines

    Φ(v_q, v_a) = Σ_{z : v_q ⇝ v_a}  P[z] · c · (1 − c)^{|z|}

summed over all walks; Theorem 1 states ``Φ(v_q, v_a) = π_{v_q}(v_a)``.
Section IV-A truncates the sum at walk length ``L`` because ``P[z]``
decays exponentially, giving the efficiently computable ``Φ_L``.

Rather than enumerating walks (``O(d^L)``), this module evaluates the
truncated sum with a dynamic program over probability-mass vectors:

    p_0 = e_{v_q};   p_{t+1} = M · p_t;
    Φ_L(v_q, v_a) = Σ_{t=1..L}  c (1 − c)^t · p_t[v_a]

which is ``O(L · |E|)`` and — crucially for Table VI — *independent of
the number of answers*, since one forward propagation scores every
answer at once.  The symbolic twin (for SGP encoding) lives in
:mod:`repro.paths.polynomial`; the two agree to machine precision,
which is property-tested.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.digraph import Node, WeightedDiGraph
from repro.utils.validation import check_fraction

if TYPE_CHECKING:  # serving.params imports this module; avoid the cycle
    from repro.serving.params import SimilarityParams

#: Paper default: paths longer than L = 5 are pruned (Section VII-E).
DEFAULT_MAX_LENGTH = 5

#: Paper default restart probability (Section III-A: "typically c ≈ 0.15").
DEFAULT_RESTART_PROB = 0.15


def _resolve_walk_params(
    max_length: "int | None",
    restart_prob: "float | None",
    params: "SimilarityParams | None",
) -> tuple[int, float]:
    """Accept either ``params=SimilarityParams(...)`` or the bare pair.

    Unlike the serving-layer shims, passing the bare pair here is *not*
    deprecated — these are the primitive evaluators and the pair is
    their natural signature; ``params`` is accepted for symmetry with
    the layers above.
    """
    if params is not None:
        if max_length is not None or restart_prob is not None:
            raise TypeError(
                "pass either params or max_length/restart_prob, not both"
            )
        return params.max_length, params.restart_prob
    if max_length is None:
        max_length = DEFAULT_MAX_LENGTH
    if restart_prob is None:
        restart_prob = DEFAULT_RESTART_PROB
    return max_length, restart_prob


def inverse_pdistance(
    graph: WeightedDiGraph,
    source: Node,
    targets: Iterable[Node],
    *,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    params: "SimilarityParams | None" = None,
) -> dict[Node, float]:
    """Truncated extended inverse P-distance from ``source`` to each target.

    Parameters
    ----------
    graph:
        The (augmented) graph.
    source:
        Walk start (the query node).
    targets:
        Nodes to score.  Unreachable targets score 0 (Eq. 7: "if there
        is no path from v_q to v_a, Φ(v_q, v_a) = 0").
    max_length:
        The pruning threshold ``L`` (number of edges per walk).
    restart_prob:
        The restart probability ``c``.
    params:
        Optional :class:`~repro.serving.params.SimilarityParams`
        carrying ``max_length``/``restart_prob`` (its ``k`` is ignored
        here); mutually exclusive with the bare arguments.

    Returns
    -------
    dict
        ``target -> Φ_L(source, target)``.
    """
    max_length, restart_prob = _resolve_walk_params(
        max_length, restart_prob, params
    )
    check_fraction("restart_prob", restart_prob)
    if max_length < 1:
        raise ValueError(f"max_length must be at least 1, got {max_length}")
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    target_list = list(targets)
    index = graph.node_index()
    missing = [t for t in target_list if t not in index]
    if missing:
        raise NodeNotFoundError(missing[0])

    matrix = graph.adjacency_matrix()
    n = len(index)
    mass = np.zeros(n)
    mass[index[source]] = 1.0

    target_idx = np.array([index[t] for t in target_list], dtype=int)
    scores = np.zeros(len(target_list))
    damping = 1.0 - restart_prob
    factor = restart_prob
    for _ in range(max_length):
        mass = matrix @ mass
        factor *= damping
        if not mass.any():
            break  # all walk mass absorbed/expired
        scores += factor * mass[target_idx]
    return {t: float(s) for t, s in zip(target_list, scores)}


def inverse_pdistance_batch(
    graph: WeightedDiGraph,
    sources: Iterable[Node],
    targets: Iterable[Node],
    *,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    params: "SimilarityParams | None" = None,
) -> dict[Node, dict[Node, float]]:
    """``Φ_L`` for many sources at once: one propagation of stacked vectors.

    Evaluating a whole test set query-by-query repeats the sparse
    matrix traversal per query; stacking the one-hot start vectors into
    a matrix turns the dynamic program into ``L`` sparse-dense products
    — the same arithmetic, a fraction of the overhead.  Used by the
    evaluation harness.

    Returns
    -------
    dict
        ``source -> {target -> Φ_L(source, target)}``.
    """
    max_length, restart_prob = _resolve_walk_params(
        max_length, restart_prob, params
    )
    check_fraction("restart_prob", restart_prob)
    if max_length < 1:
        raise ValueError(f"max_length must be at least 1, got {max_length}")
    source_list = list(sources)
    target_list = list(targets)
    index = graph.node_index()
    missing = [n for n in source_list + target_list if n not in index]
    if missing:
        raise NodeNotFoundError(missing[0])
    if not source_list:
        return {}

    matrix = graph.adjacency_matrix()
    n = len(index)
    mass = np.zeros((n, len(source_list)))
    for column, source in enumerate(source_list):
        mass[index[source], column] = 1.0
    target_idx = np.array([index[t] for t in target_list], dtype=int)
    scores = np.zeros((len(target_list), len(source_list)))
    damping = 1.0 - restart_prob
    factor = restart_prob
    for _ in range(max_length):
        mass = matrix @ mass
        factor *= damping
        if not mass.any():
            break
        scores += factor * mass[target_idx, :]
    return {
        source: {
            target: float(scores[t, s]) for t, target in enumerate(target_list)
        }
        for s, source in enumerate(source_list)
    }


def inverse_pdistance_single(
    graph: WeightedDiGraph,
    source: Node,
    target: Node,
    *,
    max_length: "int | None" = None,
    restart_prob: "float | None" = None,
    params: "SimilarityParams | None" = None,
) -> float:
    """``Φ_L(source, target)`` for a single pair."""
    return inverse_pdistance(
        graph,
        source,
        [target],
        max_length=max_length,
        restart_prob=restart_prob,
        params=params,
    )[target]


def similarity_profile(
    graph: WeightedDiGraph,
    source: Node,
    targets: Iterable[Node],
    lengths: Iterable[int],
    *,
    restart_prob: float = DEFAULT_RESTART_PROB,
) -> dict[int, dict[Node, float]]:
    """``Φ_L`` for several values of ``L`` sharing one propagation.

    Used by the Fig. 7(a) experiment, which compares the summed top-k
    similarity ``Sum_L`` across pruning thresholds: the DP runs once up
    to ``max(lengths)`` and snapshots the partial sums at each requested
    ``L``.
    """
    check_fraction("restart_prob", restart_prob)
    length_list = sorted(set(int(length) for length in lengths))
    if not length_list or length_list[0] < 1:
        raise ValueError(f"lengths must be positive integers, got {length_list}")
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    target_list = list(targets)
    index = graph.node_index()
    missing = [t for t in target_list if t not in index]
    if missing:
        raise NodeNotFoundError(missing[0])

    matrix = graph.adjacency_matrix()
    mass = np.zeros(len(index))
    mass[index[source]] = 1.0
    target_idx = np.array([index[t] for t in target_list], dtype=int)
    scores = np.zeros(len(target_list))
    damping = 1.0 - restart_prob
    factor = restart_prob

    snapshots: dict[int, dict[Node, float]] = {}
    want = set(length_list)
    for step in range(1, length_list[-1] + 1):
        mass = matrix @ mass
        factor *= damping
        scores += factor * mass[target_idx]
        if step in want:
            snapshots[step] = {t: float(s) for t, s in zip(target_list, scores)}
    return snapshots
