"""Pluggable propagation backends behind one protocol + registry.

Every similarity kernel in the repository — the dense truncated
inverse-P-distance DP, the sparse local-push evaluator, exact PPR, and
the per-answer random-walk baseline — is reachable through one seam:
:class:`PropagationBackend`.  Callers select a kernel by *name* via
:attr:`repro.serving.params.SimilarityParams.backend` and resolve it
with :func:`resolve_backend`; nothing outside :mod:`repro.similarity`
calls the kernel functions directly (lint rule R006 enforces this).

Third-party kernels plug in without touching core modules::

    from repro.similarity.backend import register_backend

    class MyKernel:
        name = "mine"
        supports_matrix = False
        def scores(self, graph, source, targets, *, params): ...
        def scores_batch(self, graph, sources, targets, *, params): ...

    register_backend(MyKernel())

Two capability levels exist:

- **graph-level** (``scores`` / ``scores_batch``): evaluate against a
  :class:`~repro.graph.digraph.WeightedDiGraph`; every backend has it.
- **matrix-level** (``supports_matrix = True``, ``propagate`` /
  ``propagate_batch``): evaluate against the serving engine's
  incremental CSR with pre-seeded residuals.  Only backends that
  compute the truncated inverse P-distance semantics may claim it —
  the engine's cache, delta revalidation, and contracts all assume it.
  Backends with ``uses_out_matrix = True`` (push) receive the engine's
  maintained out-edge CSR and amplification bound instead of
  re-deriving them per call.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np
from scipy import sparse

from repro.errors import NodeNotFoundError, SimilarityError, UnknownBackendError
from repro.graph.digraph import Node, WeightedDiGraph
from repro.similarity.inverse_pdistance import (
    inverse_pdistance,
    inverse_pdistance_batch,
)
from repro.similarity.ppr import ppr_scores
from repro.similarity.push import (
    PropagationResult,
    amplification_bound,
    out_adjacency,
    push_propagate,
)
from repro.similarity.random_walk import random_walk_similarity

if TYPE_CHECKING:  # params imports this package; annotation-only import
    from repro.serving.params import SimilarityParams

__all__ = [
    "PropagationBackend",
    "PropagationResult",
    "UnknownBackendError",
    "DenseBackend",
    "PushBackend",
    "PPRBackend",
    "RandomWalkBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "resolve_backend",
]


@runtime_checkable
class PropagationBackend(Protocol):
    """The kernel seam: graph-level scoring plus optional matrix-level.

    ``name`` keys the registry; ``supports_matrix`` advertises whether
    :meth:`propagate` works (backends without it raise
    :class:`~repro.errors.SimilarityError` there, and the serving
    engine refuses them up front).
    """

    name: str
    supports_matrix: bool

    def scores(
        self,
        graph: WeightedDiGraph,
        source: Node,
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, float]:
        """``{target: score}`` for one source on a live graph."""
        ...  # pragma: no cover - protocol

    def scores_batch(
        self,
        graph: WeightedDiGraph,
        sources: Iterable[Node],
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, dict[Node, float]]:
        """``{source: {target: score}}`` for many sources at once."""
        ...  # pragma: no cover - protocol

    def propagate(
        self,
        matrix: sparse.csr_matrix,
        seed_idx: np.ndarray,
        seed_weights: np.ndarray,
        target_idx: np.ndarray,
        *,
        params: "SimilarityParams",
        out_matrix: "sparse.csr_matrix | None" = None,
        rho: "float | None" = None,
    ) -> PropagationResult:
        """Matrix-level evaluation with the first step pre-seeded.

        ``matrix`` is the engine's in-edge CSR (``M[i, j] = w(v_j →
        v_i)``); the seed is the query's out-link weights at their
        entity indices.  ``out_matrix``/``rho`` are engine-maintained
        push state, only meaningful to ``uses_out_matrix`` backends.
        """
        ...  # pragma: no cover - protocol


def _no_matrix_kernel(name: str) -> SimilarityError:
    return SimilarityError(
        f"backend {name!r} has no matrix-level kernel "
        f"(supports_matrix=False); it cannot serve through the engine"
    )


def _source_out_links(
    graph: WeightedDiGraph, source: Node, index: dict[Node, int]
) -> tuple[np.ndarray, np.ndarray]:
    """The level-0 push residual: one step of mass out of ``source``."""
    successors = graph.successors(source)
    seed_idx = np.fromiter(
        (index[node] for node in successors), dtype=np.int64, count=len(successors)
    )
    seed_weights = np.fromiter(
        successors.values(), dtype=np.float64, count=len(successors)
    )
    return seed_idx, seed_weights


class DenseBackend:
    """The reference dense dynamic program (Eq. 7, Section IV-A).

    Matrix-level propagation mirrors the engine's historical loop
    operation-for-operation, so engine results stay bitwise equal to a
    cold :func:`~repro.similarity.inverse_pdistance.inverse_pdistance`
    recompute.
    """

    name = "dense"
    supports_matrix = True
    uses_out_matrix = False

    def scores(
        self,
        graph: WeightedDiGraph,
        source: Node,
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, float]:
        return inverse_pdistance(graph, source, targets, params=params)

    def scores_batch(
        self,
        graph: WeightedDiGraph,
        sources: Iterable[Node],
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, dict[Node, float]]:
        return inverse_pdistance_batch(graph, sources, targets, params=params)

    def propagate(
        self,
        matrix: sparse.csr_matrix,
        seed_idx: np.ndarray,
        seed_weights: np.ndarray,
        target_idx: np.ndarray,
        *,
        params: "SimilarityParams",
        out_matrix: "sparse.csr_matrix | None" = None,
        rho: "float | None" = None,
    ) -> PropagationResult:
        mass = np.zeros(matrix.shape[0])
        mass[seed_idx] = seed_weights
        damping = 1.0 - params.restart_prob
        factor = params.restart_prob
        factor *= damping
        scores = np.zeros(len(target_idx))
        scores += factor * mass[target_idx]
        matvecs = 0
        for _ in range(params.max_length - 1):
            mass = matrix @ mass
            matvecs += 1
            factor *= damping
            if not mass.any():
                break
            scores += factor * mass[target_idx]
        return PropagationResult(
            scores=scores, edges_touched=matvecs * matrix.nnz
        )

    def propagate_batch(
        self,
        matrix: sparse.csr_matrix,
        seed_columns: Sequence[tuple[np.ndarray, np.ndarray]],
        target_idx: np.ndarray,
        *,
        params: "SimilarityParams",
    ) -> PropagationResult:
        """Stacked propagation: ``scores[target, column]`` block."""
        mass = np.zeros((matrix.shape[0], len(seed_columns)))
        for column, (seed_idx, seed_weights) in enumerate(seed_columns):
            mass[seed_idx, column] = seed_weights
        damping = 1.0 - params.restart_prob
        factor = params.restart_prob
        factor *= damping
        scores = np.zeros((len(target_idx), len(seed_columns)))
        scores += factor * mass[target_idx, :]
        matvecs = 0
        for _ in range(params.max_length - 1):
            mass = matrix @ mass
            matvecs += 1
            factor *= damping
            if not mass.any():
                break
            scores += factor * mass[target_idx, :]
        return PropagationResult(
            scores=scores, edges_touched=matvecs * matrix.nnz
        )


class PushBackend:
    """Sparse local-push evaluator (:mod:`repro.similarity.push`).

    Scores agree with :class:`DenseBackend` within the derived error
    budget ``params.push_tolerance`` (exactly, when it is 0); per-query
    work scales with the query's ``L``-hop out-neighborhood.
    """

    name = "push"
    supports_matrix = True
    uses_out_matrix = True

    def scores(
        self,
        graph: WeightedDiGraph,
        source: Node,
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, float]:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        target_list = list(targets)
        index = graph.node_index()
        missing = [t for t in target_list if t not in index]
        if missing:
            raise NodeNotFoundError(missing[0])
        out_matrix = out_adjacency(graph.adjacency_matrix())
        seed_idx, seed_weights = _source_out_links(graph, source, index)
        target_idx = np.array(
            [index[t] for t in target_list], dtype=np.int64
        )
        result = push_propagate(
            out_matrix,
            seed_idx,
            seed_weights,
            target_idx,
            max_length=params.max_length,
            restart_prob=params.restart_prob,
            tolerance=params.push_tolerance,
        )
        return {
            t: float(s) for t, s in zip(target_list, result.scores)
        }

    def scores_batch(
        self,
        graph: WeightedDiGraph,
        sources: Iterable[Node],
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, dict[Node, float]]:
        source_list = list(sources)
        target_list = list(targets)
        index = graph.node_index()
        missing = [n for n in source_list + target_list if n not in index]
        if missing:
            raise NodeNotFoundError(missing[0])
        if not source_list:
            return {}
        out_matrix = out_adjacency(graph.adjacency_matrix())
        rho = amplification_bound(out_matrix)
        target_idx = np.array(
            [index[t] for t in target_list], dtype=np.int64
        )
        results: dict[Node, dict[Node, float]] = {}
        for source in source_list:
            seed_idx, seed_weights = _source_out_links(graph, source, index)
            result = push_propagate(
                out_matrix,
                seed_idx,
                seed_weights,
                target_idx,
                max_length=params.max_length,
                restart_prob=params.restart_prob,
                tolerance=params.push_tolerance,
                rho=rho,
            )
            results[source] = {
                t: float(s) for t, s in zip(target_list, result.scores)
            }
        return results

    def propagate(
        self,
        matrix: sparse.csr_matrix,
        seed_idx: np.ndarray,
        seed_weights: np.ndarray,
        target_idx: np.ndarray,
        *,
        params: "SimilarityParams",
        out_matrix: "sparse.csr_matrix | None" = None,
        rho: "float | None" = None,
    ) -> PropagationResult:
        if out_matrix is None:
            out_matrix = out_adjacency(matrix)
        return push_propagate(
            out_matrix,
            seed_idx,
            seed_weights,
            target_idx,
            max_length=params.max_length,
            restart_prob=params.restart_prob,
            tolerance=params.push_tolerance,
            rho=rho,
        )


class PPRBackend:
    """Exact Personalized PageRank (:mod:`repro.similarity.ppr`).

    The un-truncated stationary score — ``params.max_length`` is
    ignored (PPR sums all walk lengths); graph-level only.
    """

    name = "ppr"
    supports_matrix = False

    def scores(
        self,
        graph: WeightedDiGraph,
        source: Node,
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, float]:
        return ppr_scores(
            graph, source, targets, restart_prob=params.restart_prob
        )

    def scores_batch(
        self,
        graph: WeightedDiGraph,
        sources: Iterable[Node],
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, dict[Node, float]]:
        target_list = list(targets)
        return {
            source: self.scores(graph, source, target_list, params=params)
            for source in sources
        }

    def propagate(
        self,
        matrix: sparse.csr_matrix,
        seed_idx: np.ndarray,
        seed_weights: np.ndarray,
        target_idx: np.ndarray,
        *,
        params: "SimilarityParams",
        out_matrix: "sparse.csr_matrix | None" = None,
        rho: "float | None" = None,
    ) -> PropagationResult:
        raise _no_matrix_kernel(self.name)


class RandomWalkBackend:
    """The per-answer linear-equation baseline of [5] (Table VI).

    ``params.max_length`` is ignored (the baseline solves the full
    stationary system per answer); graph-level only.
    """

    name = "random_walk"
    supports_matrix = False

    def scores(
        self,
        graph: WeightedDiGraph,
        source: Node,
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, float]:
        return random_walk_similarity(
            graph, source, targets, restart_prob=params.restart_prob
        )

    def scores_batch(
        self,
        graph: WeightedDiGraph,
        sources: Iterable[Node],
        targets: Iterable[Node],
        *,
        params: "SimilarityParams",
    ) -> dict[Node, dict[Node, float]]:
        target_list = list(targets)
        return {
            source: self.scores(graph, source, target_list, params=params)
            for source in sources
        }

    def propagate(
        self,
        matrix: sparse.csr_matrix,
        seed_idx: np.ndarray,
        seed_weights: np.ndarray,
        target_idx: np.ndarray,
        *,
        params: "SimilarityParams",
        out_matrix: "sparse.csr_matrix | None" = None,
        rho: "float | None" = None,
    ) -> PropagationResult:
        raise _no_matrix_kernel(self.name)


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, PropagationBackend] = {}


def register_backend(
    backend: PropagationBackend, *, replace: bool = False
) -> PropagationBackend:
    """Register ``backend`` under its ``name``; returns it for chaining.

    Re-registering the *same* object is a no-op; registering a
    different object under a taken name raises ``ValueError`` unless
    ``replace=True`` (so a typo cannot silently shadow a kernel).
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"backend {backend!r} must expose a non-empty string 'name'"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not backend and not replace:
        raise ValueError(
            f"backend name {name!r} is already registered "
            f"({existing!r}); pass replace=True to override"
        )
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> PropagationBackend:
    """Remove and return the backend registered under ``name``."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownBackendError(
            f"unknown propagation backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def get_backend(name: str) -> PropagationBackend:
    """Look up a backend by name.

    Raises
    ------
    UnknownBackendError
        When no backend is registered under ``name``.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown propagation backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(
    selector: "str | SimilarityParams",
) -> PropagationBackend:
    """Resolve a backend from a name or a ``SimilarityParams``."""
    name = selector if isinstance(selector, str) else selector.backend
    return get_backend(name)


register_backend(DenseBackend())
register_backend(PushBackend())
register_backend(PPRBackend())
register_backend(RandomWalkBackend())
