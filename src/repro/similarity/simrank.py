"""SimRank similarity (Jeh & Widom, KDD 2002).

The paper's related-work section (Section II) contrasts two families of
graph similarity: walk-probability measures (RWR, PPR — the family the
framework builds on) and *reference-based* measures, where "two objects
are similar if they are referenced by similar objects" — SimRank.  This
module implements SimRank so the two families can be compared on the
same graphs (see ``tests/test_similarity_simrank.py`` and the CLI's
``similarity`` command), completing the similarity substrate.

The recursive definition over a weighted digraph:

    s(a, a) = 1
    s(a, b) = (C / (Σ_in w)(a)(Σ_in w)(b)) ·
              Σ_{i ∈ In(a)} Σ_{j ∈ In(b)} w(i, a) w(j, b) s(i, j)

computed here by the standard fixed-point iteration on the full
similarity matrix (suitable for the graph sizes of the experiments;
SimRank is quadratic in |V| by nature).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, NodeNotFoundError
from repro.graph.digraph import Node, WeightedDiGraph
from repro.utils.validation import check_fraction


def simrank_matrix(
    graph: WeightedDiGraph,
    *,
    decay: float = 0.8,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> tuple[np.ndarray, dict[Node, int]]:
    """Compute the full SimRank matrix of ``graph``.

    Parameters
    ----------
    graph:
        Any weighted digraph; weights act as in-link importance.
    decay:
        The SimRank decay factor ``C`` (classically 0.8).
    max_iter, tol:
        Fixed-point iteration controls (convergence is geometric with
        rate ``C``, so ~40 iterations reach 1e-4 at the default decay).

    Returns
    -------
    (matrix, index):
        ``matrix[i, j]`` is the SimRank similarity of the nodes with
        indices ``i``/``j`` in ``index``.

    Raises
    ------
    ConvergenceError
        If ``max_iter`` sweeps do not reach ``tol``.
    """
    check_fraction("decay", decay)
    index = graph.node_index()
    n = len(index)
    if n == 0:
        return np.zeros((0, 0)), {}

    # Column-normalized in-link weight matrix W[i, a] = w(i, a)/Σ_in(a).
    weights = np.zeros((n, n))
    for node in graph.nodes():
        a = index[node]
        preds = graph.predecessors(node)
        total = sum(preds.values())
        if total <= 0:
            continue
        for pred, weight in preds.items():
            weights[index[pred], a] = weight / total

    similarity = np.eye(n)
    for _ in range(max_iter):
        updated = decay * (weights.T @ similarity @ weights)
        np.fill_diagonal(updated, 1.0)
        delta = float(np.abs(updated - similarity).max())
        similarity = updated
        if delta < tol:
            return similarity, dict(index)
    raise ConvergenceError(
        f"SimRank did not reach tol={tol} within {max_iter} iterations"
    )


def simrank(
    graph: WeightedDiGraph,
    a: Node,
    b: Node,
    *,
    decay: float = 0.8,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> float:
    """SimRank similarity of one node pair (computes the full matrix)."""
    if not graph.has_node(a):
        raise NodeNotFoundError(a)
    if not graph.has_node(b):
        raise NodeNotFoundError(b)
    matrix, index = simrank_matrix(
        graph, decay=decay, max_iter=max_iter, tol=tol
    )
    return float(matrix[index[a], index[b]])
