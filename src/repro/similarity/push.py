"""Sparse local-push evaluation of the truncated inverse P-distance.

The dense dynamic program (:mod:`repro.similarity.inverse_pdistance`)
evaluates Eq. 7 with ``L`` full sparse mat-vecs — ``O(L·|E|)`` per
query, touching every edge no matter how localized the query is.  This
module evaluates the *same* truncated sum by forward push over the
out-edge adjacency: a sparse residual frontier starts at the query's
seed links and is pushed level by level, so per-query work scales with
the size of the query's ``L``-hop out-neighborhood, not ``|E|``.

Exactness and the error budget
------------------------------
With ``tolerance = 0`` the push is exact: every level's frontier is the
support of the dense DP's mass vector and the per-level score
contributions are the same sums, merely sparsely represented.  With a
positive ``tolerance`` ε, tiny residual entries are dropped *after*
contributing their own level's score, before being pushed further.

A unit of residual dropped at level ``t`` (of ``0..L−1``; level ``t``
scores walks of length ``t+1``) can still have contributed, to any
single target, at most

    g_t = Σ_{s=t+1..L−1}  c · (1−c)^{s+1} · ρ^{s−t}

where ``ρ ≥ 1`` bounds the per-level mass amplification — the maximum
node out-weight sum.  (Base graphs are sub-stochastic, ``ρ = 1``; the
augmented graphs of Section III-A can be locally super-stochastic
because entities carry answer links on top of their KG out-weights, so
``ρ`` must be measured, not assumed.)  Each of the ``L−1`` pushing
levels receives an equal allowance ``ε/(L−1)``, giving the per-entry
drop threshold

    θ_t = ε / ((L−1) · g_t · |frontier_t|).

The kernel additionally accounts the *exact* dropped mass per level, so
the returned :attr:`PropagationResult.error_bound` is typically far
below ε while the guarantee ``|push − dense| ≤ ε`` (per target) holds
by construction.  The ``check_push_scores`` contract
(:mod:`repro.devtools.contracts`) verifies the bound against the dense
DP whenever contracts are armed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

#: Default drop tolerance ε: absolute per-target score error allowed in
#: exchange for pruning negligible residual mass.  Top-k–relevant scores
#: on the paper's graphs are ≥ ~1e-6; 1e-8 prunes deep-tail residue
#: (the bulk of the frontier on large graphs) without moving any rank.
DEFAULT_PUSH_TOLERANCE = 1e-8

__all__ = [
    "DEFAULT_PUSH_TOLERANCE",
    "PropagationResult",
    "amplification_bound",
    "out_adjacency",
    "remaining_gain",
    "push_propagate",
]


@dataclass(frozen=True)
class PropagationResult:
    """One propagation's scores plus its cost/accuracy accounting.

    Parameters
    ----------
    scores:
        Per-target score array (2-D, targets x batch, for batched
        backends).
    edges_touched:
        Number of edge traversals the evaluation performed.  Dense
        backends report ``mat-vecs x nnz``; push reports the summed
        out-degree of every pushed frontier node — the quantity the
        sublinearity claim is about.
    touched_nodes:
        Sorted node indices whose out-edges the evaluation read, or
        ``None`` when the backend does not track them (dense touches
        everything).  The engine uses this set to decide whether a
        weight patch can invalidate a cached push result.
    error_bound:
        Per-target absolute error bound versus the exact truncated sum
        (0 for exact backends).
    rho:
        The mass-amplification bound the ``error_bound`` was derived
        under; the bound only remains valid while the served matrix's
        amplification stays ≤ ``rho``.
    """

    scores: np.ndarray
    edges_touched: int
    touched_nodes: "np.ndarray | None" = None
    error_bound: float = 0.0
    rho: float = 1.0


def amplification_bound(out_matrix: sparse.csr_matrix) -> float:
    """``ρ``: the maximum node out-weight sum of ``out_matrix``, ≥ 1.

    One unit of residual mass pushed from a node spreads into at most
    its out-weight sum of next-level mass; the maximum over nodes bounds
    per-level amplification for the drop-error derivation above.
    """
    sums = np.asarray(out_matrix.sum(axis=1)).ravel()
    if sums.size == 0:
        return 1.0
    return float(max(1.0, float(sums.max())))


def out_adjacency(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Out-edge CSR (row ``u`` holds ``w(u→v)``) from the in-edge matrix.

    The engine and the dense DP store ``M[i, j] = w(v_j → v_i)`` so that
    ``M @ mass`` advances mass one step; push instead walks rows of the
    transpose.  Returns a canonical (sorted-indices) CSR copy.
    """
    return sparse.csr_matrix(matrix.T)


def remaining_gain(
    level: int,
    *,
    max_length: int,
    restart_prob: float,
    rho: float,
) -> float:
    """``g_t``: max per-target score a unit residual dropped at ``level``
    could still have produced over the remaining levels (see module
    docstring).  Zero when no pushing levels remain.
    """
    damping = 1.0 - restart_prob
    factor = restart_prob * damping ** (level + 1)
    amplify = 1.0
    gain = 0.0
    for _ in range(level + 1, max_length):
        factor *= damping
        amplify *= rho
        gain += factor * amplify
    return gain


def _coalesce(idx: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted unique indices with duplicate weights summed."""
    idx = np.asarray(idx, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if idx.shape != weights.shape:
        raise ValueError(
            f"seed index shape {idx.shape} does not match weight shape "
            f"{weights.shape}"
        )
    if idx.size == 0:
        return idx, weights
    uniq, inverse = np.unique(idx, return_inverse=True)
    if uniq.shape == idx.shape:
        return uniq, weights[np.argsort(idx, kind="stable")]
    return uniq, np.bincount(inverse, weights=weights, minlength=uniq.shape[0])


def _frontier_lookup(
    frontier: np.ndarray, values: np.ndarray, target_idx: np.ndarray
) -> np.ndarray:
    """Residual value at each target (0 where absent); frontier non-empty."""
    pos = np.searchsorted(frontier, target_idx)
    pos = np.minimum(pos, frontier.shape[0] - 1)
    hit = frontier[pos] == target_idx
    return np.where(hit, values[pos], 0.0)


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s + c) for s, c in zip(starts, counts)])``
    without a Python loop (the grouped-arange cumsum trick)."""
    mask = counts > 0
    starts = starts[mask]
    counts = counts[mask]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    boundaries = np.cumsum(counts)[:-1]
    steps[boundaries] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(steps)


def push_propagate(
    out_matrix: sparse.csr_matrix,
    seed_idx: np.ndarray,
    seed_weights: np.ndarray,
    target_idx: np.ndarray,
    *,
    max_length: int,
    restart_prob: float,
    tolerance: float = DEFAULT_PUSH_TOLERANCE,
    rho: "float | None" = None,
) -> PropagationResult:
    """Local-push ``Φ_L`` with the first step pre-seeded.

    The seed is the level-0 residual — for a query, its out-link
    weights at their entity indices (exactly the state of the dense DP
    after its first mat-vec), so level ``t`` scores walks of length
    ``t+1`` with coefficient ``c·(1−c)^{t+1}``.  ``max_length`` levels
    are scored; ``max_length − 1`` pushes are performed.

    Parameters
    ----------
    out_matrix:
        Out-edge CSR (see :func:`out_adjacency`).
    seed_idx, seed_weights:
        The level-0 residual (duplicate indices are summed).
    target_idx:
        Node indices to score, in output order.
    max_length:
        The truncation length ``L``.
    restart_prob:
        The restart probability ``c``.
    tolerance:
        The per-target absolute error budget ε (0 = exact push).
    rho:
        Mass-amplification bound; measured from ``out_matrix`` when not
        supplied.  Callers patching the matrix in place must pass a
        bound that stays valid across the patches they intend to make.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be at least 1, got {max_length}")
    if not 0.0 < restart_prob < 1.0:
        raise ValueError(
            f"restart_prob must be in (0, 1), got {restart_prob}"
        )
    if not tolerance >= 0.0:
        raise ValueError(f"tolerance must be ≥ 0, got {tolerance}")
    if rho is None:
        rho = amplification_bound(out_matrix)
    if rho < 1.0:
        raise ValueError(f"rho must be ≥ 1, got {rho}")

    indptr = out_matrix.indptr
    indices = out_matrix.indices
    data = out_matrix.data
    damping = 1.0 - restart_prob
    target_idx = np.asarray(target_idx, dtype=np.int64)

    frontier, values = _coalesce(seed_idx, seed_weights)
    scores = np.zeros(target_idx.shape[0], dtype=np.float64)
    touched_parts: list[np.ndarray] = []
    edges_touched = 0
    error_bound = 0.0
    pushing_levels = max_length - 1
    factor = restart_prob * damping  # c·(1−c)^{t+1} at t = 0

    for level in range(max_length):
        if frontier.size == 0:
            break
        if target_idx.size:
            scores += factor * _frontier_lookup(frontier, values, target_idx)
        if level == pushing_levels:
            break  # the last level is scored but never pushed
        gain = remaining_gain(
            level, max_length=max_length, restart_prob=restart_prob, rho=rho
        )
        if tolerance > 0.0:
            theta = tolerance / (pushing_levels * gain * frontier.size)
        else:
            theta = 0.0
        keep = values > theta
        if not keep.all():
            dropped = float(values[~keep].sum())
            if dropped > 0.0:
                error_bound += dropped * gain
            frontier = frontier[keep]
            values = values[keep]
            if frontier.size == 0:
                break
        touched_parts.append(frontier)
        starts = indptr[frontier].astype(np.int64)
        counts = indptr[frontier + 1].astype(np.int64) - starts
        total = int(counts.sum())
        edges_touched += total
        if total == 0:
            break  # the whole frontier is sinks; mass expires here
        edge_pos = _concat_ranges(starts, counts)
        spread = np.repeat(values, counts) * data[edge_pos]
        frontier, inverse = np.unique(indices[edge_pos], return_inverse=True)
        frontier = frontier.astype(np.int64)
        values = np.bincount(inverse, weights=spread, minlength=frontier.shape[0])
        factor *= damping

    touched_nodes = (
        np.unique(np.concatenate(touched_parts))
        if touched_parts
        else np.empty(0, dtype=np.int64)
    )
    return PropagationResult(
        scores=scores,
        edges_touched=edges_touched,
        touched_nodes=touched_nodes,
        error_bound=error_bound,
        rho=float(rho),
    )
