"""Edge sets touched by a vote's similarity evaluation.

Two sections of the paper need, for a query node ``v_q`` and an answer
node ``v_a``, the set of edges that lie on *some* walk of at most ``L``
edges from ``v_q`` to ``v_a``:

- the feasibility judgment's ``Set(v_a*)`` / ``Set(v_a_{rank-1})``
  (Section V, the "extreme condition");
- the vote similarity ``Sim(t_i, t_j)`` of the split strategy, which is
  the Jaccard overlap of the votes' edge sets ``E(t)`` (Eq. 20).

Enumerating walks to collect edges would cost ``O(d^L)``; instead we
compute shortest-distance labels forward from the source and backward
from the target, and keep edge ``(u, v)`` iff
``dist_from_source(u) + 1 + dist_to_target(v) ≤ L`` — the exact
condition for the edge to appear on at least one within-budget walk.
This is two BFS traversals, ``O(L · |E|)`` worst case.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.errors import NodeNotFoundError
from repro.graph.digraph import Node, WeightedDiGraph

EdgeKey = tuple[Node, Node]


def _bounded_distances(
    graph: WeightedDiGraph, start: Node, max_depth: int, *, reverse: bool
) -> dict[Node, int]:
    """BFS hop distances from ``start`` up to ``max_depth`` (inclusive).

    With ``reverse=True`` distances are measured along predecessor
    edges, i.e. the result maps ``v -> shortest #edges from v to start``.
    """
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    distances: dict[Node, int] = {start: 0}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if depth >= max_depth:
            continue
        neighbours = (
            graph.predecessors(node) if reverse else graph.successors(node)
        )
        for neighbour in neighbours:
            if neighbour not in distances:
                distances[neighbour] = depth + 1
                frontier.append(neighbour)
    return distances


def reachable_edge_set(
    graph: WeightedDiGraph,
    source: Node,
    target: Node,
    max_length: int,
) -> set[EdgeKey]:
    """Edges on at least one walk of ≤ ``max_length`` edges from source to target.

    This is the paper's ``Set(v_a)`` for the feasibility judgment.  The
    result is empty when the target is unreachable within the budget.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be at least 1, got {max_length}")
    forward = _bounded_distances(graph, source, max_length, reverse=False)
    backward = _bounded_distances(graph, target, max_length, reverse=True)
    edges: set[EdgeKey] = set()
    for head, d_head in forward.items():
        if d_head >= max_length:
            continue
        for tail in graph.successors(head):
            d_tail = backward.get(tail)
            if d_tail is not None and d_head + 1 + d_tail <= max_length:
                edges.add((head, tail))
    return edges


def vote_edge_set(
    graph: WeightedDiGraph,
    query: Node,
    answers: Iterable[Node],
    max_length: int,
) -> set[EdgeKey]:
    """The edge set ``E(t)`` of a vote (Eq. 20).

    A vote's similarity evaluation touches every edge on some ≤ L walk
    from its query node to *any* of its top-k answer nodes; ``E(t)`` is
    the union over answers.  The forward BFS from the query is shared
    across answers.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be at least 1, got {max_length}")
    forward = _bounded_distances(graph, query, max_length, reverse=False)
    edges: set[EdgeKey] = set()
    for answer in answers:
        backward = _bounded_distances(graph, answer, max_length, reverse=True)
        for head, d_head in forward.items():
            if d_head >= max_length:
                continue
            for tail in graph.successors(head):
                d_tail = backward.get(tail)
                if d_tail is not None and d_head + 1 + d_tail <= max_length:
                    edges.add((head, tail))
    return edges
