"""Path enumeration substrate.

The extended inverse P-distance (Eq. 7) sums over *walks* — node
sequences that may revisit nodes — from a query node to an answer node,
truncated at length ``L`` (Section IV-A's pruning).  This subpackage
provides:

- :mod:`repro.paths.walks` — bounded-length walk enumeration;
- :mod:`repro.paths.polynomial` — the symbolic form of the truncated
  similarity as a signomial over edge-weight variables (the object the
  SGP encoder manipulates);
- :mod:`repro.paths.edgesets` — the edge set ``E(t)`` touched by a
  vote's similarity evaluation (Eq. 20) computed without enumeration.
"""

from repro.paths.walks import enumerate_walks, walk_probability, count_walks
from repro.paths.polynomial import EdgeVariableIndex, path_polynomial, path_polynomials
from repro.paths.edgesets import reachable_edge_set, vote_edge_set

__all__ = [
    "enumerate_walks",
    "walk_probability",
    "count_walks",
    "EdgeVariableIndex",
    "path_polynomial",
    "path_polynomials",
    "reachable_edge_set",
    "vote_edge_set",
]
