"""Bounded-length walk enumeration.

Eq. 7 of the paper sums over all paths ``z : v_q ⇝ v_a`` "possibly
touching some nodes in the graph multiple times" — i.e. *walks*.  The
length ``|z|`` of ``z = ⟨v_q, v_1, ..., v_k, v_a⟩`` is its edge count
``k + 1``.  Because every edge weight is below one, walk probability
decays exponentially with length, and Section IV-A prunes walks longer
than ``L`` (the paper settles on ``L = 5`` in Section VII-E).

Enumeration cost is ``O(d^L)`` in the average degree ``d`` — exactly the
complexity the paper reports for constructing one constraint — so these
functions are used for the *symbolic* SGP encoding and for tests, while
the numeric similarity evaluator (:mod:`repro.similarity`) uses an
equivalent dynamic program.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import NodeNotFoundError
from repro.graph.digraph import Node, WeightedDiGraph

Walk = tuple[Node, ...]


def enumerate_walks(
    graph: WeightedDiGraph,
    source: Node,
    targets: "Node | Iterable[Node]",
    max_length: int,
) -> dict[Node, list[Walk]]:
    """Enumerate all walks of at most ``max_length`` edges from ``source``.

    Parameters
    ----------
    graph:
        The (augmented) graph to walk over.
    source:
        Start node (a query node in the paper's setting).
    targets:
        One node or an iterable of nodes; enumeration is shared across
        targets, which is how the encoder builds the polynomials for all
        top-k answers of one vote in a single sweep.
    max_length:
        Maximum number of edges per walk (the paper's ``L``).

    Returns
    -------
    dict
        ``target -> list of walks``, each walk a node tuple starting at
        ``source`` and ending at the target.  Targets with no walk map
        to an empty list (their similarity is 0 by definition).

    Notes
    -----
    Walks may pass *through* a target and continue; every prefix that
    ends on a target is recorded independently, matching the walk-sum
    semantics of Eq. 7.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be at least 1, got {max_length}")
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    # A bare str/int is one target; anything else must be an iterable of
    # targets.  (Tuple node labels must therefore be wrapped in a list.)
    target_set = {targets} if isinstance(targets, (str, int)) else set(targets)
    for target in target_set:
        if not graph.has_node(target):
            raise NodeNotFoundError(target)

    found: dict[Node, list[Walk]] = {target: [] for target in target_set}
    # Iterative DFS over (walk prefix); recursion would overflow for large L.
    stack: list[Walk] = [(source,)]
    while stack:
        walk = stack.pop()
        node = walk[-1]
        length = len(walk) - 1
        if length > 0 and node in target_set:
            found[node].append(walk)
        if length >= max_length:
            continue
        for successor in graph.successors(node):
            stack.append(walk + (successor,))
    return found


def walk_probability(graph: WeightedDiGraph, walk: Sequence[Node]) -> float:
    """The product of edge weights along ``walk`` (``P[z]`` of Eq. 8)."""
    if len(walk) < 2:
        raise ValueError("a walk needs at least two nodes")
    probability = 1.0
    for head, tail in zip(walk, walk[1:]):
        probability *= graph.weight(head, tail)
    return probability


def count_walks(
    graph: WeightedDiGraph, source: Node, target: Node, max_length: int
) -> int:
    """Count walks of at most ``max_length`` edges from ``source`` to ``target``.

    Useful for estimating encoding cost before committing to a full
    enumeration (the count grows as ``O(d^L)``).
    """
    return len(enumerate_walks(graph, source, target, max_length)[target])


def iter_walks(
    graph: WeightedDiGraph, source: Node, target: Node, max_length: int
) -> Iterator[Walk]:
    """Generator variant of :func:`enumerate_walks` for a single target.

    Yields walks lazily so callers can stop early (e.g. "does any walk
    exist?" checks in the feasibility filter).
    """
    if max_length < 1:
        raise ValueError(f"max_length must be at least 1, got {max_length}")
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    stack: list[Walk] = [(source,)]
    while stack:
        walk = stack.pop()
        node = walk[-1]
        length = len(walk) - 1
        if length > 0 and node == target:
            yield walk
        if length >= max_length:
            continue
        for successor in graph.successors(node):
            stack.append(walk + (successor,))
