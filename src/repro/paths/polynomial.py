"""Symbolic path polynomials: the truncated similarity as a signomial.

For the SGP encoding (Section IV-B) each adjustable edge weight becomes
a variable ``x_{i,j}``.  The truncated extended inverse P-distance

    Φ_L(v_q, v_a) = Σ_{walks z, |z| ≤ L}  P[z] · c · (1 − c)^{|z|}

is then a *posynomial* in those variables: each walk contributes one
term whose coefficient folds in ``c (1 − c)^{|z|}`` and the weights of
the fixed (non-variable) edges on the walk — query links and answer
links — and whose exponents count how many times the walk uses each
variable edge.  Constraint signomials (Eq. 11/13) are differences of two
such posynomials.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import SGPModelError
from repro.graph.digraph import Node, WeightedDiGraph
from repro.paths.walks import Walk, enumerate_walks
from repro.sgp.terms import Signomial
from repro.utils.validation import check_fraction

EdgeKey = tuple[Node, Node]


class EdgeVariableIndex:
    """Bidirectional mapping between adjustable edges and variable ids.

    The optimizer creates one index per SGP program; ids are dense
    integers ``0 .. n-1`` assigned in registration order, so they double
    as positions in the solver's variable vector.  Edges not registered
    here (query/answer links, or KG edges outside the votes' reach) are
    treated as constants by :func:`path_polynomial`.
    """

    def __init__(self) -> None:
        self._id_of: dict[EdgeKey, int] = {}
        self._edge_of: list[EdgeKey] = []

    def register(self, head: Node, tail: Node) -> int:
        """Register edge ``head -> tail`` (idempotent); returns its id."""
        key = (head, tail)
        existing = self._id_of.get(key)
        if existing is not None:
            return existing
        var = len(self._edge_of)
        self._id_of[key] = var
        self._edge_of.append(key)
        return var

    def id_of(self, head: Node, tail: Node) -> int:
        """The variable id of a registered edge; raises if unknown."""
        try:
            return self._id_of[(head, tail)]
        except KeyError:
            raise SGPModelError(f"edge {head!r} -> {tail!r} is not a variable") from None

    def contains(self, head: Node, tail: Node) -> bool:
        """Whether ``head -> tail`` is registered as a variable."""
        return (head, tail) in self._id_of

    def edge_of(self, var: int) -> EdgeKey:
        """The ``(head, tail)`` pair of variable ``var``."""
        return self._edge_of[var]

    def edges(self) -> Sequence[EdgeKey]:
        """All registered edges in id order."""
        return tuple(self._edge_of)

    def initial_values(self, graph: WeightedDiGraph) -> list[float]:
        """Current weights of all registered edges, in id order.

        This is the ``x_{i,j} ← G*_{i,j}`` initialization of Algorithm 1
        (lines 5–8).
        """
        return [graph.weight(head, tail) for head, tail in self._edge_of]

    def __len__(self) -> int:
        return len(self._edge_of)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EdgeVariableIndex vars={len(self._edge_of)}>"


def walk_term(
    graph: WeightedDiGraph,
    walk: Walk,
    variables: EdgeVariableIndex,
    restart_prob: float,
) -> tuple[float, dict[int, float]]:
    """The signomial term contributed by one walk.

    Returns ``(coefficient, exponents)`` where the coefficient is
    ``c (1 − c)^{|z|}`` times the fixed-edge weights and the exponents
    count occurrences of each variable edge (a walk may traverse an edge
    more than once, giving exponents above one).
    """
    length = len(walk) - 1
    coeff = restart_prob * (1.0 - restart_prob) ** length
    exponents: dict[int, float] = {}
    for head, tail in zip(walk, walk[1:]):
        if variables.contains(head, tail):
            var = variables.id_of(head, tail)
            exponents[var] = exponents.get(var, 0.0) + 1.0
        else:
            coeff *= graph.weight(head, tail)
    return coeff, exponents


def path_polynomial(
    graph: WeightedDiGraph,
    source: Node,
    target: Node,
    variables: EdgeVariableIndex,
    *,
    max_length: int = 5,
    restart_prob: float = 0.15,
) -> Signomial:
    """Build ``Φ_L(source, target)`` as a posynomial signomial.

    Walks are enumerated up to ``max_length`` edges; each contributes
    one term via :func:`walk_term`.  Evaluating the result at the
    current edge weights reproduces the numeric truncated similarity
    exactly (property-tested in ``tests/test_paths_polynomial.py``).
    """
    return path_polynomials(
        graph,
        source,
        [target],
        variables,
        max_length=max_length,
        restart_prob=restart_prob,
    )[target]


def path_polynomials(
    graph: WeightedDiGraph,
    source: Node,
    targets: Iterable[Node],
    variables: EdgeVariableIndex,
    *,
    max_length: int = 5,
    restart_prob: float = 0.15,
) -> dict[Node, Signomial]:
    """Build the polynomials for several targets in one enumeration sweep.

    The SGP encoder calls this once per vote with the vote's full top-k
    answer list, so the ``O(d^L)`` walk enumeration from the query node
    is shared across all k constraints.
    """
    check_fraction("restart_prob", restart_prob)
    walks_by_target = enumerate_walks(graph, source, targets, max_length)
    polynomials: dict[Node, Signomial] = {}
    for target, walks in walks_by_target.items():
        polynomial = Signomial()
        for walk in walks:
            coeff, exponents = walk_term(graph, walk, variables, restart_prob)
            polynomial.add_term(coeff, exponents)
        polynomials[target] = polynomial
    return polynomials


def register_reachable_edges(
    variables: EdgeVariableIndex,
    edges: Iterable[EdgeKey],
    is_adjustable,
) -> list[int]:
    """Register every adjustable edge from ``edges`` into ``variables``.

    ``is_adjustable`` is a predicate ``(head, tail) -> bool`` — the
    optimizer passes :meth:`AugmentedGraph.is_kg_edge` so that only
    entity→entity edges become variables while query/answer links stay
    constant.  Returns the (possibly empty) list of newly assigned or
    existing ids, in input order.
    """
    ids = []
    for head, tail in edges:
        if is_adjustable(head, tail):
            ids.append(variables.register(head, tail))
    return ids
