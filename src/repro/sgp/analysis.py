"""Diagnostics for SGP programs.

The dominant cost of the framework is the SGP solve, and its difficulty
is determined by measurable program structure: variable count, number
of constraints, walk terms per constraint (which grows as ``O(d^L)``),
and the maximum monomial degree (the longest walk's edge-repetition
count).  :func:`analyze_program` extracts those numbers so experiments
can report *why* a configuration is slow — e.g. Fig. 7(b)'s blow-up is
a term-count blow-up, which the analysis makes visible before any
solver runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sgp.problem import SGPProblem


@dataclass(frozen=True)
class ProgramStats:
    """Structural statistics of one SGP program."""

    num_vars: int
    num_constraints: int
    total_terms: int
    max_terms_per_constraint: int
    mean_terms_per_constraint: float
    max_degree: float
    num_posynomial_constraints: int
    variables_used: int

    def as_row(self) -> list:
        """Cells for a text-table rendering."""
        return [
            self.num_vars,
            self.num_constraints,
            self.total_terms,
            self.max_terms_per_constraint,
            f"{self.mean_terms_per_constraint:.1f}",
            f"{self.max_degree:g}",
            self.num_posynomial_constraints,
            self.variables_used,
        ]


def analyze_program(problem: SGPProblem) -> ProgramStats:
    """Compute :class:`ProgramStats` for ``problem`` (no solving involved)."""
    term_counts = []
    max_degree = 0.0
    posynomial = 0
    used: set[int] = set()
    for constraint in problem.constraints:
        signomial = constraint.signomial
        term_counts.append(signomial.num_terms)
        max_degree = max(max_degree, signomial.max_degree())
        posynomial += signomial.is_posynomial()
        used.update(signomial.variables())
    total = int(np.sum(term_counts)) if term_counts else 0
    return ProgramStats(
        num_vars=problem.num_vars,
        num_constraints=problem.num_constraints,
        total_terms=total,
        max_terms_per_constraint=max(term_counts) if term_counts else 0,
        mean_terms_per_constraint=(total / len(term_counts)) if term_counts else 0.0,
        max_degree=max_degree,
        num_posynomial_constraints=posynomial,
        variables_used=len(used),
    )


def estimated_constraint_cost(avg_degree: float, max_length: int, k: int) -> float:
    """The paper's encoding-cost estimate ``O(k · d^L)`` per vote.

    A planning helper: compare against
    :attr:`ProgramStats.total_terms` to see how much path pruning and
    edge sharing reduce the worst case in practice.
    """
    if avg_degree < 0 or max_length < 1 or k < 1:
        raise ValueError("need avg_degree ≥ 0, max_length ≥ 1, k ≥ 1")
    return float(k * avg_degree**max_length)
