"""Iterative monomial condensation for signomial programs.

The classical approach to SGP (surveyed in the GP tutorial the paper
cites as [11]) solves a *sequence of geometric programs*: every
signomial constraint ``p(x) − q(x) ≤ 0`` (``p``, ``q`` posynomials) is
rewritten as ``p(x) / q(x) ≤ 1`` and the denominator is *condensed* —
replaced by its best monomial under-approximation at the current point

    q̂(x) = Π_i ( t_i(x) / λ_i )^{λ_i},    λ_i = t_i(x_k) / q(x_k)

(the weighted arithmetic–geometric-mean inequality guarantees
``q̂(x) ≤ q(x)`` with equality at ``x_k``, so the condensed program's
feasible set is an inner approximation).  Each condensed program is a
GP, convex in log-space, solved here by SLSQP on the log-sum-exp form.
Repeating condense→solve until the iterates stop moving is the
condensation loop.

This solver exists as an *ablation* against the direct NLP solvers in
:mod:`repro.sgp.solver` (see ``benchmarks/bench_ablations.py``): it is
the principled GP-community algorithm, typically more robust on badly
scaled programs and slower per iteration.  It requires the objective in
signomial form, so it applies to the single-vote formulation (Eq. 12
objective) but not to the sigmoid multi-vote objective.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize
from scipy.special import logsumexp

from repro.devtools.contracts import check_posynomial, check_weight_bounds
from repro.errors import SGPSolverError
from repro.obs import get_registry, trace_span
from repro.sgp.problem import SGPProblem
from repro.sgp.solver import SGPSolution
from repro.sgp.terms import Signomial

#: Terms with weight below this are dropped from a condensation (their
#: AM-GM exponent is numerically irrelevant and log(0) must be avoided).
_LAMBDA_EPS = 1e-12


def split_signomial(signomial: Signomial) -> tuple[Signomial, Signomial]:
    """Split ``f = p − q`` into posynomials ``(p, q)`` by coefficient sign."""
    p, q = Signomial(), Signomial()
    for coeff, exponents in signomial.terms():
        if coeff > 0:
            p.add_term(coeff, exponents)
        else:
            q.add_term(-coeff, exponents)
    return p, q


def condense_posynomial(posynomial: Signomial, x: np.ndarray) -> Signomial:
    """Best monomial approximation of ``posynomial`` at ``x`` (AM–GM).

    Returns a single-term signomial ``q̂`` with ``q̂(x) = posynomial(x)``
    and ``q̂ ≤ posynomial`` everywhere on the positive orthant.
    """
    terms = list(posynomial.terms())
    if not terms:
        raise SGPSolverError("cannot condense an empty posynomial")
    # Contract seam (Eq. 2-3): the AM-GM condensation is only valid for a
    # genuine posynomial — every coefficient finite and strictly positive.
    check_posynomial(terms, seam="sgp.condense_posynomial")
    values = np.array([
        coeff * np.prod([x[v] ** e for v, e in exponents.items()])
        for coeff, exponents in terms
    ])
    total = values.sum()
    if total <= 0:
        raise SGPSolverError("posynomial evaluates to zero; cannot condense")
    lambdas = values / total

    log_coeff = 0.0
    exponent_acc: dict[int, float] = {}
    for lam, (coeff, exponents) in zip(lambdas, terms):
        if lam < _LAMBDA_EPS:
            continue
        log_coeff += lam * (np.log(coeff) - np.log(lam))
        for var, exp in exponents.items():
            exponent_acc[var] = exponent_acc.get(var, 0.0) + lam * exp
    condensed = Signomial()
    condensed.add_term(float(np.exp(log_coeff)), exponent_acc)
    return condensed


class _LogSpacePosynomial:
    """``log f(exp(y))`` of a posynomial, with gradient (convex in y)."""

    def __init__(self, posynomial: Signomial, num_vars: int) -> None:
        terms = list(posynomial.terms())
        if not terms:
            raise SGPSolverError("empty posynomial in log-space form")
        self.log_coeffs = np.array([np.log(c) for c, _ in terms])
        self.exponents = np.zeros((len(terms), num_vars))
        for t, (_, exps) in enumerate(terms):
            for var, exp in exps.items():
                self.exponents[t, var] = exp

    def value_and_grad(self, y: np.ndarray) -> tuple[float, np.ndarray]:
        logits = self.log_coeffs + self.exponents @ y
        value = float(logsumexp(logits))
        weights = np.exp(logits - value)
        return value, weights @ self.exponents


def solve_by_condensation(
    problem: SGPProblem,
    *,
    max_rounds: int = 30,
    x_tol: float = 1e-7,
    inner_max_iter: int = 200,
) -> SGPSolution:
    """Solve an SGP by iterative monomial condensation.

    Parameters
    ----------
    problem:
        The program.  Its objective must have a signomial form
        (:attr:`SGPProblem.objective_signomial`); the encoder's Eq. 12
        distance objective qualifies.
    max_rounds:
        Maximum condense→solve iterations.
    x_tol:
        Stop when the iterate moves less than this in infinity norm.
    inner_max_iter:
        Iteration cap for each inner convex GP solve.

    Notes
    -----
    The signomial objective ``f_0 = p_0 − q_0`` is handled with the
    standard epigraph trick: an auxiliary variable ``t`` is appended,
    ``t`` is minimized, and ``p_0 + offset ≤ t + q_0`` is added as a
    signomial constraint (the offset keeps the epigraph variable
    positive).  Infeasible iterations fall back to the most recent
    feasible iterate.
    """
    objective_sig = problem.objective_signomial
    if objective_sig is None:
        raise SGPSolverError(
            "condensation requires a signomial objective; the sigmoid "
            "multi-vote objective is not signomial — use solve_sgp instead"
        )
    if max_rounds < 1:
        # With zero rounds the loop below would never bind its iteration
        # variable and the epilogue would crash with a NameError.
        raise SGPSolverError(f"max_rounds must be at least 1, got {max_rounds}")
    with trace_span(
        "sgp.condensation",
        num_vars=problem.num_vars,
        num_constraints=problem.num_constraints,
    ) as span:
        start = time.perf_counter()
        n = problem.num_vars
        t_var = n  # index of the epigraph variable
        offset = 1.0

        # Epigraph constraint: p0 + offset − t − q0 ≤ 0.
        epigraph = objective_sig.copy()
        epigraph.add_term(offset, {})
        epigraph.add_term(-1.0, {t_var: 1.0})

        signomials = [epigraph] + [c.signomial for c in problem.constraints]
        margins = [0.0] + [c.margin for c in problem.constraints]
        splits = [split_signomial(s) for s in signomials]

        lower = np.append(problem.lower, 1e-9)
        upper = np.append(problem.upper, 1e9)
        x = np.append(problem.x0.copy(), 0.0)
        x[t_var] = max(objective_sig.evaluate(problem.x0) + offset, 1e-6)
        x = np.clip(x, lower, upper)

        y_lower, y_upper = np.log(lower), np.log(upper)
        best_feasible: "np.ndarray | None" = None
        nit_total = 0
        for _round in range(max_rounds):
            # Build the condensed GP at the current point.
            log_constraints = []
            feasible_model = True
            for (p, q), margin in zip(splits, margins):
                numerator = p.copy()
                if margin:
                    numerator.add_term(margin, {})
                if numerator.num_terms == 0:
                    continue  # trivially satisfied: 0 ≤ q
                if q.num_terms == 0:
                    # posynomial ≤ 0 is unsatisfiable on the positive orthant
                    feasible_model = False
                    break
                q_hat = condense_posynomial(q, x)
                ((q_coeff, q_exps),) = list(q_hat.terms())
                # p / q̂ ≤ 1: divide every numerator term by the monomial.
                ratio = Signomial()
                for coeff, exps in numerator.terms():
                    merged = dict(exps)
                    for var, exp in q_exps.items():
                        merged[var] = merged.get(var, 0.0) - exp
                    ratio.add_term(coeff / q_coeff, merged)
                log_constraints.append(_LogSpacePosynomial(ratio, n + 1))
            if not feasible_model:
                raise SGPSolverError(
                    "a constraint has no negative terms and a positive margin: "
                    "the program is structurally infeasible"
                )

            def objective_fn(y):
                grad = np.zeros(n + 1)
                grad[t_var] = 1.0
                return float(y[t_var]), grad

            scipy_constraints = [
                {
                    "type": "ineq",
                    "fun": (lambda y, _c=c: -_c.value_and_grad(y)[0]),
                    "jac": (lambda y, _c=c: -_c.value_and_grad(y)[1]),
                }
                for c in log_constraints
            ]
            result = optimize.minimize(
                objective_fn,
                np.log(x),
                jac=True,
                method="SLSQP",
                bounds=optimize.Bounds(y_lower, y_upper),
                constraints=scipy_constraints,
                options={"maxiter": inner_max_iter, "ftol": 1e-12},
            )
            nit_total += int(result.get("nit", 0))
            x_new = np.clip(np.exp(result.x), lower, upper)
            moved = float(np.abs(x_new[:n] - x[:n]).max())
            x = x_new
            if problem.num_satisfied(x[:n]) == problem.num_constraints:
                best_feasible = x.copy()
            if moved < x_tol:
                break

        final = best_feasible if best_feasible is not None else x
        x_out = np.clip(final[:n], problem.lower, problem.upper)
        # Contract seam (Eq. 2): the returned point is inside the box.
        check_weight_bounds(
            x_out, problem.lower, problem.upper, seam="sgp.condensation"
        )
        residuals = problem.constraint_values(x_out)
        max_residual = float(residuals.max()) if residuals.size else 0.0
        solution = SGPSolution(
            x=x_out,
            objective_value=float(problem.objective.value(x_out)),
            num_satisfied=int((residuals <= 1e-9).sum()),
            num_constraints=problem.num_constraints,
            success=best_feasible is not None,
            method="condensation",
            message=f"condensation finished after {_round + 1} rounds",
            elapsed=time.perf_counter() - start,
            nit=nit_total,
            extras={"max_residual": max_residual, "rounds": _round + 1},
        )
        span.set_attrs(
            rounds=_round + 1,
            nit=nit_total,
            num_satisfied=solution.num_satisfied,
            max_residual=max_residual,
            success=solution.success,
        )
    registry = get_registry()
    registry.counter("sgp_solves_total", method="condensation").inc()
    registry.counter("sgp_condensation_rounds_total").inc(_round + 1)
    registry.histogram("sgp_solve_seconds").observe(solution.elapsed)
    if not solution.all_satisfied:
        registry.counter("sgp_partial_solutions_total").inc()
    return solution
