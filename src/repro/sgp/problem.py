"""The SGP problem container.

An SGP instance (Eq. 2) is

    minimize    f_0(x)
    subject to  f_i(x) ≤ 0,   i = 1..m
                0 < x_l ≤ x ≤ x_u

with each ``f_i`` a signomial.  (The paper writes ``f_i(x) ≤ 1``; the
two forms are interchangeable — our encoder produces difference-form
constraints ``S_other − S_best < 0`` directly, so ``≤ 0`` is the natural
normal form here.)

The objective is either a :class:`~repro.sgp.terms.Signomial` (the
single-vote distance objective, Eq. 12) or a :class:`SmoothObjective`
(the multi-vote objective, Eq. 19, whose sigmoid term is smooth but not
signomial).  Everything is compiled before handing to the solver.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.devtools.contracts import check_weight_bounds
from repro.errors import SGPModelError
from repro.sgp.terms import CompiledSignomial, Signomial


class SmoothObjective:
    """A smooth objective given by a joint value-and-gradient callable.

    Parameters
    ----------
    fn:
        ``fn(x) -> (value, gradient)`` with a dense gradient the same
        length as ``x``.
    name:
        Label used in solver diagnostics.
    """

    def __init__(self, fn: Callable[[np.ndarray], tuple[float, np.ndarray]],
                 name: str = "objective") -> None:
        self._fn = fn
        self.name = name

    def value_and_grad(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        """Evaluate the objective and its gradient at ``x``."""
        value, grad = self._fn(x)
        return float(value), np.asarray(grad, dtype=float)

    def value(self, x: np.ndarray) -> float:
        """Objective value only."""
        return self.value_and_grad(x)[0]

    @classmethod
    def from_signomial(cls, signomial: Signomial, num_vars: int,
                       name: str = "signomial") -> "SmoothObjective":
        """Wrap a compiled signomial as a smooth objective."""
        compiled = signomial.compile(num_vars)
        return cls(compiled.value_and_grad, name=name)

    @classmethod
    def weighted_sum(
        cls,
        components: Sequence[tuple[float, "SmoothObjective"]],
        name: str = "weighted-sum",
    ) -> "SmoothObjective":
        """The objective ``Σ λ_i · f_i`` (Eq. 19 combines two components)."""
        if not components:
            raise SGPModelError("weighted_sum needs at least one component")

        def fn(x: np.ndarray) -> tuple[float, np.ndarray]:
            total = 0.0
            grad = np.zeros_like(np.asarray(x, dtype=float))
            for weight, component in components:
                value, g = component.value_and_grad(x)
                total += weight * value
                grad += weight * g
            return total, grad

        return cls(fn, name=name)


@dataclass
class Constraint:
    """One inequality ``f(x) + margin ≤ 0``.

    ``margin`` turns the paper's strict inequalities (Eq. 11) into
    numerically meaningful non-strict ones: requiring
    ``S_other − S_best ≤ −margin`` forces the best answer to win by a
    detectable gap rather than by an infinitesimal the ranking code
    would lose to float noise.
    """

    signomial: Signomial
    name: str = "constraint"
    margin: float = 0.0
    compiled: "CompiledSignomial | None" = field(default=None, repr=False)

    def value(self, x: np.ndarray) -> float:
        """``f(x) + margin`` (feasible iff ≤ 0)."""
        if self.compiled is not None:
            return self.compiled.value(x) + self.margin
        return self.signomial.evaluate(np.asarray(x)) + self.margin


class SGPProblem:
    """A box-bounded signomial program.

    Parameters
    ----------
    initial:
        Starting point ``x_0`` (current edge weights; Algorithm 1 lines
        5–8).  Also defines the number of variables.
    lower, upper:
        Box bounds ``x_l``/``x_u``; scalars broadcast.  Both must be
        strictly positive (GP variables live on the positive orthant),
        and the paper's weight bounds keep every weight a valid
        probability.
    """

    def __init__(
        self,
        initial: Sequence[float],
        *,
        lower: "float | Sequence[float]" = 1e-6,
        upper: "float | Sequence[float]" = 1.0,
    ) -> None:
        self.x0 = np.asarray(initial, dtype=float)
        if self.x0.ndim != 1 or self.x0.size == 0:
            raise SGPModelError("initial point must be a non-empty 1-D sequence")
        n = self.x0.size
        self.lower = np.broadcast_to(np.asarray(lower, dtype=float), (n,)).copy()
        self.upper = np.broadcast_to(np.asarray(upper, dtype=float), (n,)).copy()
        if np.any(self.lower <= 0):
            raise SGPModelError("lower bounds must be strictly positive")
        if np.any(self.lower > self.upper):
            raise SGPModelError("lower bounds must not exceed upper bounds")
        # Clip the starting point into the box: current graph weights can
        # sit exactly on (or just outside) a bound after normalization.
        self.x0 = np.clip(self.x0, self.lower, self.upper)
        # Contract seam (Eq. 2): the clipped start satisfies the box.
        check_weight_bounds(
            self.x0, self.lower, self.upper, seam="sgp.problem"
        )
        self.constraints: list[Constraint] = []
        self._objective: "SmoothObjective | None" = None
        self._objective_signomial: "Signomial | None" = None

    @property
    def num_vars(self) -> int:
        """Number of variables."""
        return int(self.x0.size)

    @property
    def num_constraints(self) -> int:
        """Number of inequality constraints."""
        return len(self.constraints)

    def add_constraint(
        self, signomial: Signomial, *, name: str = "", margin: float = 0.0
    ) -> Constraint:
        """Add ``signomial(x) + margin ≤ 0``; returns the record."""
        if margin < 0:
            raise SGPModelError(f"margin must be non-negative, got {margin}")
        used = signomial.variables()
        if used and max(used) >= self.num_vars:
            raise SGPModelError(
                f"constraint uses variable {max(used)} outside the problem's "
                f"{self.num_vars} variables"
            )
        constraint = Constraint(
            signomial=signomial,
            name=name or f"c{len(self.constraints)}",
            margin=float(margin),
        )
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, objective: "Signomial | SmoothObjective") -> None:
        """Set the objective (a signomial or any smooth objective)."""
        if isinstance(objective, Signomial):
            self._objective_signomial = objective
            self._objective = SmoothObjective.from_signomial(
                objective, self.num_vars
            )
        elif isinstance(objective, SmoothObjective):
            self._objective_signomial = None
            self._objective = objective
        else:
            raise SGPModelError(
                f"objective must be a Signomial or SmoothObjective, got "
                f"{type(objective).__name__}"
            )

    @property
    def objective(self) -> SmoothObjective:
        """The smooth objective; raises when unset."""
        if self._objective is None:
            raise SGPModelError("no objective has been set")
        return self._objective

    @property
    def objective_signomial(self) -> "Signomial | None":
        """The signomial form of the objective, when it has one.

        The condensation solver requires this form; the sigmoid-penalty
        objective of the multi-vote solution does not have one.
        """
        return self._objective_signomial

    def compile(self) -> None:
        """Compile every constraint for fast evaluation (idempotent)."""
        for constraint in self.constraints:
            if constraint.compiled is None:
                constraint.compiled = constraint.signomial.compile(self.num_vars)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def constraint_values(self, x: np.ndarray) -> np.ndarray:
        """Vector of ``f_i(x) + margin_i`` (feasible entries are ≤ 0)."""
        self.compile()
        return np.array([c.value(np.asarray(x, dtype=float)) for c in self.constraints])

    def num_satisfied(self, x: np.ndarray, *, tol: float = 1e-9) -> int:
        """How many constraints hold at ``x`` (within ``tol``)."""
        if not self.constraints:
            return 0
        return int((self.constraint_values(x) <= tol).sum())

    def is_feasible(self, x: np.ndarray, *, tol: float = 1e-9) -> bool:
        """Whether every constraint and bound holds at ``x``."""
        x = np.asarray(x, dtype=float)
        if np.any(x < self.lower - tol) or np.any(x > self.upper + tol):
            return False
        return self.num_satisfied(x, tol=tol) == self.num_constraints

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SGPProblem vars={self.num_vars} constraints={self.num_constraints}>"
        )
