"""SGP solvers built on :mod:`scipy.optimize`.

The paper solves its programs with MATLAB's ``fmincon`` (Section VII-A3);
the closest Python analogue is :func:`scipy.optimize.minimize` with the
SLSQP or trust-constr methods, both of which handle smooth nonlinear
objectives, nonlinear inequality constraints, and box bounds.  A
quadratic-penalty fallback handles the cases where an SQP step fails
(singular working sets are common when many walk terms share edges):
it folds constraint violations into the objective with an increasing
penalty weight and needs only L-BFGS-B.

All methods evaluate constraints and gradients through the compiled
signomial forms, so a program with hundreds of constraints and thousands
of walk terms per constraint stays tractable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.devtools.contracts import check_weight_bounds
from repro.errors import SGPSolverError
from repro.obs import get_registry, trace_span
from repro.sgp.problem import SGPProblem


@dataclass
class SGPSolution:
    """Result of an SGP solve.

    Attributes
    ----------
    x:
        The returned point (always clipped into the box bounds).
    objective_value:
        Objective at ``x``.
    num_satisfied / num_constraints:
        Constraint satisfaction census at ``x`` — the multi-vote
        formulation *expects* partial satisfaction when votes conflict,
        so a solution is not discarded merely because some constraints
        fail.
    success:
        Whether the underlying solver reported success.
    method:
        Which method produced the point (``slsqp``, ``trust-constr``,
        ``penalty``, or ``slsqp+penalty`` when the fallback fired).
    message:
        Solver diagnostic text.
    elapsed:
        Wall-clock seconds spent in the solver.
    """

    x: np.ndarray
    objective_value: float
    num_satisfied: int
    num_constraints: int
    success: bool
    method: str
    message: str = ""
    elapsed: float = 0.0
    nit: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def all_satisfied(self) -> bool:
        """Whether every constraint holds at the solution."""
        return self.num_satisfied == self.num_constraints

    @property
    def max_residual(self) -> float:
        """Largest constraint violation ``max_i f_i(x) + margin_i`` at the
        solution (≤ 0 means fully feasible; 0.0 for unconstrained
        programs)."""
        return float(self.extras.get("max_residual", 0.0))


def _scipy_constraints(problem: SGPProblem) -> list[dict]:
    """SLSQP-style constraint dicts: ``fun(x) ≥ 0`` per constraint."""
    constraints = []
    for record in problem.constraints:
        compiled = record.compiled
        margin = record.margin

        def fun(x, _c=compiled, _m=margin):
            return -(_c.value(x) + _m)

        def jac(x, _c=compiled):
            return -_c.grad(x)

        constraints.append({"type": "ineq", "fun": fun, "jac": jac})
    return constraints


def _finalize(problem: SGPProblem, x: np.ndarray, *, success: bool, method: str,
               message: str, elapsed: float, nit: int) -> SGPSolution:
    x = np.clip(np.asarray(x, dtype=float), problem.lower, problem.upper)
    # Contract seam (Eq. 2): the returned point is inside the box.
    check_weight_bounds(x, problem.lower, problem.upper, seam=f"sgp.solve[{method}]")
    value = problem.objective.value(x)
    # Evaluate the constraint vector once and derive both the
    # satisfaction census and the residual telemetry from it.
    if problem.constraints:
        residuals = problem.constraint_values(x)
        num_satisfied = int((residuals <= 1e-9).sum())
        max_residual = float(residuals.max())
    else:
        num_satisfied = 0
        max_residual = 0.0
    return SGPSolution(
        x=x,
        objective_value=float(value),
        num_satisfied=num_satisfied,
        num_constraints=problem.num_constraints,
        success=success,
        method=method,
        message=message,
        elapsed=elapsed,
        nit=nit,
        extras={"max_residual": max_residual},
    )


def _solve_slsqp(problem: SGPProblem, *, max_iter: int, tol: float) -> SGPSolution:
    start = time.perf_counter()
    objective = problem.objective

    def fun(x):
        return objective.value_and_grad(x)

    result = optimize.minimize(
        fun,
        problem.x0,
        jac=True,
        method="SLSQP",
        bounds=optimize.Bounds(problem.lower, problem.upper),
        constraints=_scipy_constraints(problem),
        options={"maxiter": max_iter, "ftol": tol},
    )
    return _finalize(
        problem,
        result.x,
        success=bool(result.success),
        method="slsqp",
        message=str(result.message),
        elapsed=time.perf_counter() - start,
        nit=int(result.get("nit", 0)),
    )


def _solve_trust_constr(problem: SGPProblem, *, max_iter: int, tol: float) -> SGPSolution:
    start = time.perf_counter()
    objective = problem.objective

    nonlinear = []
    if problem.constraints:
        compiled = [c.compiled for c in problem.constraints]
        margins = np.array([c.margin for c in problem.constraints])

        def fun(x):
            return np.array([c.value(x) for c in compiled]) + margins

        def jac(x):
            return np.vstack([c.grad(x) for c in compiled])

        nonlinear.append(
            optimize.NonlinearConstraint(fun, -np.inf, 0.0, jac=jac)
        )

    result = optimize.minimize(
        lambda x: objective.value_and_grad(x),
        problem.x0,
        jac=True,
        method="trust-constr",
        bounds=optimize.Bounds(problem.lower, problem.upper),
        constraints=nonlinear,
        options={"maxiter": max_iter, "gtol": tol, "xtol": tol},
    )
    return _finalize(
        problem,
        result.x,
        success=bool(result.success),
        method="trust-constr",
        message=str(result.message),
        elapsed=time.perf_counter() - start,
        nit=int(result.get("nit", 0)),
    )


def _solve_penalty(
    problem: SGPProblem,
    *,
    max_iter: int,
    tol: float,
    initial_penalty: float = 10.0,
    penalty_growth: float = 10.0,
    rounds: int = 6,
    margin_slack: float = 1e-6,
) -> SGPSolution:
    """Quadratic-penalty method: unconstrained solves with growing ρ.

    Margins are inflated by ``margin_slack`` during the solve: a pure
    quadratic penalty converges to the constraint boundary from the
    infeasible side, so aiming slightly past the true margin makes the
    returned point strictly feasible with respect to the real one.
    """
    start = time.perf_counter()
    objective = problem.objective
    compiled = [c.compiled for c in problem.constraints]
    margins = [c.margin + margin_slack for c in problem.constraints]

    x = problem.x0.copy()
    rho = initial_penalty
    total_nit = 0
    message = "penalty method"
    for _ in range(rounds):
        def fun(x, _rho=rho):
            value, grad = objective.value_and_grad(x)
            for c, margin in zip(compiled, margins):
                c_value, c_grad = c.value_and_grad(x)
                violation = c_value + margin
                if violation > 0.0:
                    value += _rho * violation * violation
                    grad = grad + (2.0 * _rho * violation) * c_grad
            return value, grad

        result = optimize.minimize(
            fun,
            x,
            jac=True,
            method="L-BFGS-B",
            bounds=optimize.Bounds(problem.lower, problem.upper),
            options={"maxiter": max_iter, "ftol": tol * 1e-3},
        )
        x = np.clip(result.x, problem.lower, problem.upper)
        total_nit += int(result.get("nit", 0))
        if problem.num_satisfied(x) == problem.num_constraints:
            message = "penalty method: all constraints satisfied"
            break
        rho *= penalty_growth
    return _finalize(
        problem,
        x,
        success=True,
        method="penalty",
        message=message,
        elapsed=time.perf_counter() - start,
        nit=total_nit,
    )


def solve_sgp(
    problem: SGPProblem,
    *,
    method: str = "slsqp",
    max_iter: int = 200,
    tol: float = 1e-9,
    fallback: bool = True,
) -> SGPSolution:
    """Solve an :class:`SGPProblem`.

    Parameters
    ----------
    problem:
        The program; its objective must be set.
    method:
        ``"slsqp"`` (default, fastest), ``"trust-constr"`` (more robust
        on ill-conditioned programs), or ``"penalty"``.
    max_iter, tol:
        Iteration cap and tolerance for the underlying scipy solver.
    fallback:
        When true and an SQP-family solve fails *and* leaves constraints
        unsatisfied, re-solve with the penalty method starting from the
        failed point's better of {x0, x}.  The solution's ``method``
        field records ``"<method>+penalty"`` in that case.

    Raises
    ------
    SGPSolverError
        For unknown methods or problems without an objective.
    """
    problem.compile()
    problem.objective  # raises early when unset
    with trace_span(
        "sgp.solve",
        method=method,
        num_vars=problem.num_vars,
        num_constraints=problem.num_constraints,
    ) as span:
        if method == "slsqp":
            solution = _solve_slsqp(problem, max_iter=max_iter, tol=tol)
        elif method == "trust-constr":
            solution = _solve_trust_constr(problem, max_iter=max_iter, tol=tol)
        elif method == "penalty":
            solution = _solve_penalty(problem, max_iter=max_iter, tol=tol)
        else:
            raise SGPSolverError(
                f"unknown method {method!r}; expected 'slsqp', 'trust-constr', "
                f"or 'penalty'"
            )

        if (
            fallback
            and method != "penalty"
            and not solution.success
            and not solution.all_satisfied
        ):
            retry = _solve_penalty(problem, max_iter=max_iter, tol=tol)
            if (retry.num_satisfied, -retry.objective_value) >= (
                solution.num_satisfied,
                -solution.objective_value,
            ):
                retry.method = f"{solution.method}+penalty"
                retry.elapsed += solution.elapsed
                solution = retry
        span.set_attrs(
            resolved_method=solution.method,
            nit=solution.nit,
            num_satisfied=solution.num_satisfied,
            max_residual=solution.max_residual,
            success=solution.success,
        )
    _record_solve_metrics(solution)
    return solution


def _record_solve_metrics(solution: SGPSolution) -> None:
    """Registry telemetry for one finished solve (any method)."""
    registry = get_registry()
    registry.counter("sgp_solves_total", method=solution.method).inc()
    registry.histogram("sgp_solve_seconds").observe(solution.elapsed)
    registry.counter("sgp_iterations_total").inc(max(solution.nit, 0))
    if "+penalty" in solution.method:
        registry.counter("sgp_fallbacks_total").inc()
    if not solution.all_satisfied:
        registry.counter("sgp_partial_solutions_total").inc()
