"""Signomial geometric programming (SGP) substrate.

Section III-A of the paper casts graph optimization as an SGP (Eq. 2–3):
minimize a signomial objective subject to signomial inequality
constraints over box-bounded positive variables.  The paper solved it
with MATLAB's ``fmincon``; this subpackage provides the equivalent
building blocks in Python:

- :mod:`repro.sgp.terms` — signomial algebra with exact evaluation and
  analytic gradients (compiled to sparse numpy ops for the solver);
- :mod:`repro.sgp.problem` — the problem container;
- :mod:`repro.sgp.solver` — ``scipy.optimize`` based solvers (SLSQP and
  trust-constr) plus a penalty-method fallback;
- :mod:`repro.sgp.condensation` — the classic iterative monomial
  condensation heuristic for signomial programs, used as an ablation
  solver.
"""

from repro.sgp.terms import CompiledSignomial, Signomial
from repro.sgp.problem import SGPProblem, SmoothObjective
from repro.sgp.solver import SGPSolution, solve_sgp
from repro.sgp.condensation import solve_by_condensation

__all__ = [
    "Signomial",
    "CompiledSignomial",
    "SGPProblem",
    "SmoothObjective",
    "SGPSolution",
    "solve_sgp",
    "solve_by_condensation",
]
