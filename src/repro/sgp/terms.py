"""Signomial algebra.

A *signomial* (Eq. 3 of the paper) is a finite sum of terms

    f(x) = Σ_k  c_k · x_1^{e_1k} · x_2^{e_2k} · ... · x_n^{e_nk}

over strictly positive variables ``x``, with real coefficients ``c_k``
and real exponents ``e_jk``.  When every coefficient is positive the
signomial is a *posynomial*; a single term is a *monomial*.

Variables are identified by non-negative integer ids (the optimizer
assigns one id per adjustable edge weight plus, in the multi-vote
formulation, one per deviation variable).  A :class:`Signomial` is a
mutable dict-of-terms used while *building* expressions; the solver
*compiles* it into a :class:`CompiledSignomial`, which evaluates values
and gradients through vectorized sparse matrix products — essential
because each constraint can contain thousands of walk terms and the
solver evaluates it hundreds of times.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

import numpy as np
from scipy import sparse

from repro.errors import SGPModelError

#: Terms whose coefficient magnitude falls below this are dropped; they
#: are far below both solver tolerance and float accumulation error.
COEFF_EPS = 1e-300

ExponentKey = tuple[tuple[int, float], ...]


def _canonical_key(exponents: Mapping[int, float]) -> ExponentKey:
    """Canonical hashable key for an exponent mapping (zero exponents dropped)."""
    items = []
    for var, exp in exponents.items():
        if var < 0:
            raise SGPModelError(f"variable ids must be non-negative, got {var}")
        if exp != 0.0:
            items.append((int(var), float(exp)))
    items.sort()
    return tuple(items)


class Signomial:
    """A mutable signomial: mapping of exponent keys to coefficients.

    Supports term accumulation, addition/subtraction, scalar and
    signomial multiplication, exact evaluation, and analytic gradients.
    Exact (dict-based) evaluation is convenient for tests and small
    expressions; hot paths should :meth:`compile` first.
    """

    __slots__ = ("_terms",)

    def __init__(self) -> None:
        self._terms: dict[ExponentKey, float] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: float) -> "Signomial":
        """The constant signomial ``value``."""
        sig = cls()
        sig.add_term(value, {})
        return sig

    @classmethod
    def variable(cls, var: int) -> "Signomial":
        """The signomial ``x_var``."""
        sig = cls()
        sig.add_term(1.0, {var: 1.0})
        return sig

    @classmethod
    def from_terms(cls, terms: Iterable[tuple[float, Mapping[int, float]]]) -> "Signomial":
        """Build from ``(coefficient, {var: exponent})`` pairs."""
        sig = cls()
        for coeff, exponents in terms:
            sig.add_term(coeff, exponents)
        return sig

    def add_term(self, coeff: float, exponents: Mapping[int, float]) -> None:
        """Accumulate ``coeff · Π x_v^e`` into this signomial."""
        if not math.isfinite(coeff):
            raise SGPModelError(f"non-finite coefficient {coeff!r}")
        key = _canonical_key(exponents)
        new = self._terms.get(key, 0.0) + coeff
        if abs(new) < COEFF_EPS:
            self._terms.pop(key, None)
        else:
            self._terms[key] = new

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_terms(self) -> int:
        """Number of distinct terms."""
        return len(self._terms)

    def terms(self) -> Iterable[tuple[float, dict[int, float]]]:
        """Iterate over ``(coefficient, {var: exponent})`` pairs."""
        for key, coeff in self._terms.items():
            yield coeff, dict(key)

    def variables(self) -> set[int]:
        """The set of variable ids appearing with non-zero exponent."""
        out: set[int] = set()
        for key in self._terms:
            out.update(var for var, _ in key)
        return out

    def is_posynomial(self) -> bool:
        """Whether every coefficient is positive (GP-compatible)."""
        return all(c > 0 for c in self._terms.values())

    def is_constant(self) -> bool:
        """Whether the signomial has no variable dependence."""
        return not self.variables()

    def constant_value(self) -> float:
        """Value when constant; raises otherwise."""
        if not self.is_constant():
            raise SGPModelError("signomial is not constant")
        return sum(self._terms.values())

    def max_degree(self) -> float:
        """Largest total exponent over terms (0 for the zero signomial)."""
        best = 0.0
        for key in self._terms:
            best = max(best, sum(exp for _, exp in key))
        return best

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def copy(self) -> "Signomial":
        clone = Signomial()
        clone._terms = dict(self._terms)
        return clone

    def __add__(self, other: "Signomial | float") -> "Signomial":
        result = self.copy()
        if isinstance(other, Signomial):
            for key, coeff in other._terms.items():
                result.add_term(coeff, dict(key))
        else:
            result.add_term(float(other), {})
        return result

    __radd__ = __add__

    def __neg__(self) -> "Signomial":
        result = Signomial()
        result._terms = {key: -coeff for key, coeff in self._terms.items()}
        return result

    def __sub__(self, other: "Signomial | float") -> "Signomial":
        if isinstance(other, Signomial):
            return self + (-other)
        return self + (-float(other))

    def __rsub__(self, other: float) -> "Signomial":
        return (-self) + float(other)

    def __mul__(self, other: "Signomial | float") -> "Signomial":
        result = Signomial()
        if isinstance(other, Signomial):
            for key_a, coeff_a in self._terms.items():
                exp_a = dict(key_a)
                for key_b, coeff_b in other._terms.items():
                    merged = dict(exp_a)
                    for var, exp in key_b:
                        merged[var] = merged.get(var, 0.0) + exp
                    result.add_term(coeff_a * coeff_b, merged)
        else:
            factor = float(other)
            for key, coeff in self._terms.items():
                result.add_term(coeff * factor, dict(key))
        return result

    __rmul__ = __mul__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Signomial terms={self.num_terms} vars={len(self.variables())}>"

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, x: "Mapping[int, float] | np.ndarray") -> float:
        """Exact evaluation at ``x`` (mapping or dense array of positives)."""
        total = 0.0
        for key, coeff in self._terms.items():
            term = coeff
            for var, exp in key:
                value = x[var]
                if value <= 0:
                    raise SGPModelError(
                        f"signomial variables must be positive, x[{var}]={value}"
                    )
                term *= value**exp
            total += term
        return total

    def gradient(self, x: "Mapping[int, float] | np.ndarray") -> dict[int, float]:
        """Exact gradient at ``x`` as ``{var: d f / d x_var}``."""
        grad: dict[int, float] = {}
        for key, coeff in self._terms.items():
            term = coeff
            for var, exp in key:
                term *= x[var] ** exp
            for var, exp in key:
                grad[var] = grad.get(var, 0.0) + term * exp / x[var]
        return grad

    def compile(self, num_vars: int) -> "CompiledSignomial":
        """Compile into vectorized sparse form over ``num_vars`` variables."""
        return CompiledSignomial(self, num_vars)


class CompiledSignomial:
    """Immutable, vectorized form of a :class:`Signomial`.

    Evaluation is done in log space: for positive ``x`` each term is
    ``c_k · exp(E_k · log x)`` where ``E`` is the (sparse) exponent
    matrix.  Values and gradients are then sparse matrix products:

    - ``value   = coeffs · exp(E @ log x)``
    - ``grad_j  = Σ_k coeffs_k · exp(E_k · log x) · E_kj / x_j``
    """

    __slots__ = ("num_vars", "coeffs", "exponents", "_exponents_t", "num_terms")

    def __init__(self, signomial: Signomial, num_vars: int) -> None:
        if num_vars < 0:
            raise SGPModelError(f"num_vars must be non-negative, got {num_vars}")
        used = signomial.variables()
        if used and max(used) >= num_vars:
            raise SGPModelError(
                f"signomial uses variable {max(used)} but num_vars={num_vars}"
            )
        self.num_vars = num_vars
        terms = list(signomial.terms())
        self.num_terms = len(terms)
        self.coeffs = np.array([c for c, _ in terms], dtype=float)
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for t, (_, exponents) in enumerate(terms):
            for var, exp in exponents.items():
                rows.append(t)
                cols.append(var)
                data.append(exp)
        self.exponents = sparse.csr_matrix(
            (data, (rows, cols)), shape=(self.num_terms, num_vars)
        )
        self._exponents_t = self.exponents.T.tocsr()

    def _term_values(self, x: np.ndarray) -> np.ndarray:
        if self.num_terms == 0:
            return np.zeros(0)
        log_x = np.log(x)
        return self.coeffs * np.exp(self.exponents @ log_x)

    def value(self, x: np.ndarray) -> float:
        """Evaluate at a dense positive vector ``x`` of length ``num_vars``."""
        return float(self._term_values(np.asarray(x, dtype=float)).sum())

    def value_and_grad(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        """Value and dense gradient in one pass (shares term values)."""
        x = np.asarray(x, dtype=float)
        if self.num_terms == 0:
            return 0.0, np.zeros(self.num_vars)
        term_values = self._term_values(x)
        grad = (self._exponents_t @ term_values) / x
        return float(term_values.sum()), np.asarray(grad)

    def grad(self, x: np.ndarray) -> np.ndarray:
        """Dense gradient at ``x``."""
        return self.value_and_grad(x)[1]
