"""Command-line interface: run the paper's experiments from a shell.

Installed as the ``repro-kg`` console script::

    repro-kg datasets                      # Table II registry
    repro-kg demo                          # the ask/vote/optimize loop
    repro-kg effectiveness --seed 11       # Tables IV/V in miniature
    repro-kg scaling --votes 5 10 20       # Fig. 6 in miniature
    repro-kg similarity --answers 40 80    # Table VI in miniature
    repro-kg serve --wal-dir state/        # durable online loop (WAL)
    repro-kg recover --wal-dir state/      # crash recovery + replay report
    repro-kg diag flight-000-slo_breach/   # post-mortem health report

Every command prints aligned text tables (no plotting dependency) and
exits non-zero on failure, so the CLI is scriptable in CI.

Output goes through the ``repro.cli`` logger (``-v`` / ``--log-level``
select verbosity); the long-running commands accept ``--metrics-json
PATH`` to dump the observability registry snapshot after the run and
print a cost breakdown of where the time went.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from collections.abc import Sequence

from repro.utils.tables import format_table

_LOG = logging.getLogger("repro.cli")

#: Commands that exercise the serving/optimization stack and therefore
#: have a meaningful metrics snapshot to report afterwards.
_INSTRUMENTED_COMMANDS = frozenset(
    {"demo", "effectiveness", "scaling", "serve", "recover"}
)


def _configure_logging(level_name: str) -> None:
    """(Re)configure the CLI logger for one ``main()`` invocation.

    The stream handler is rebuilt on every call so it binds whatever
    ``sys.stdout`` currently is — required for pytest's ``capsys`` and
    harmless elsewhere.  Messages are emitted bare (``%(message)s``):
    the CLI's output is tables meant for humans, not log records.
    """
    level = getattr(logging, level_name.upper())
    _LOG.setLevel(level)
    for handler in list(_LOG.handlers):
        _LOG.removeHandler(handler)
    handler = logging.StreamHandler(sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    _LOG.addHandler(handler)
    _LOG.propagate = False


def _cmd_datasets(_args) -> int:
    from repro.eval.datasets import dataset_table

    _LOG.info(
        format_table(
            ["DataSet", "|V|", "|E|", "AverageDegree"],
            dataset_table(),
            title="Table II datasets (published statistics)",
        )
    )
    return 0


def _cmd_demo(args) -> int:
    from repro import (
        QASystem,
        SimilarityParams,
        build_knowledge_graph,
        generate_helpdesk_corpus,
    )

    corpus = generate_helpdesk_corpus(seed=args.seed)
    kg = build_knowledge_graph(corpus.document_texts(), corpus.vocabulary)
    system = QASystem(
        kg, corpus.vocabulary, params=SimilarityParams(k=args.k)
    )
    system.add_documents(corpus.document_texts())
    question = corpus.train_pairs[0]
    answers = system.ask(question.text, question_id="cli-demo")
    _LOG.info(f"question: {question.text!r}")
    _LOG.info(
        format_table(
            ["rank", "document", "similarity"],
            [[i, doc, f"{score:.5f}"] for i, (doc, score) in enumerate(answers, 1)],
            title="initial ranking",
        )
    )
    voted = answers[min(2, len(answers) - 1)][0]
    system.vote("cli-demo", voted)
    report = system.optimize(strategy="multi", feasibility_filter=False)
    _LOG.info(
        f"\nvoted {voted!r}; optimized "
        f"({report.num_satisfied_constraints}/{report.num_constraints} "
        f"constraints satisfied, {len(report.changed_edges)} weights changed)"
    )
    reranked = system.ask(question.text, question_id="cli-demo-2")
    _LOG.info(
        format_table(
            ["rank", "document", "similarity"],
            [
                [i, doc + (" <-- voted" if doc == voted else ""), f"{score:.5f}"]
                for i, (doc, score) in enumerate(reranked, 1)
            ],
            title="after optimization",
        )
    )
    return 0


def _cmd_effectiveness(args) -> int:
    import numpy as np

    from repro import (
        GroundTruthOracle,
        generate_votes_from_oracle,
        solve_multi_vote,
        solve_single_votes,
        vote_omega_avg,
    )
    from repro.eval.harness import evaluate_test_set
    from repro.graph import AugmentedGraph, helpdesk_graph
    from repro.graph.generators import perturb_weights

    truth_kg, _ = helpdesk_graph(num_topics=6, entities_per_topic=10, seed=args.seed)
    corrupted = perturb_weights(truth_kg, noise=args.noise, seed=args.seed + 1)

    def attach(kg):
        aug = AugmentedGraph(kg)
        entities = sorted(kg.nodes())
        rng = np.random.default_rng(args.seed + 2)
        for i in range(16):
            picks = rng.choice(len(entities), size=3, replace=False)
            aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
        for i in range(args.votes + args.test_queries):
            picks = rng.choice(len(entities), size=2, replace=False)
            aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
        return aug

    truth = attach(truth_kg)
    deployed = attach(corrupted)
    oracle = GroundTruthOracle(truth)
    vote_queries = [f"q{i}" for i in range(args.votes)]
    test_queries = [f"q{i}" for i in range(args.votes, args.votes + args.test_queries)]
    votes = generate_votes_from_oracle(
        deployed, oracle, queries=vote_queries, k=8, seed=args.seed + 3
    )
    candidates = sorted(truth.answer_nodes, key=repr)
    test_pairs = {q: oracle.best_answer(q, candidates) for q in test_queries}

    single, _ = solve_single_votes(deployed, votes)
    multi, _ = solve_multi_vote(deployed, votes)
    rows = []
    for label, graph in (
        ("Original", deployed),
        ("Single-vote", single),
        ("Multi-vote", multi),
    ):
        result = evaluate_test_set(graph, test_pairs)
        omega = "-" if graph is deployed else f"{vote_omega_avg(graph, votes):+.3f}"
        rows.append(
            [label, f"{result.r_avg:.2f}", omega, f"{result.mrr:.3f}",
             f"{result.hits[1]:.2f}", f"{result.hits[10]:.2f}"]
        )
    _LOG.info(
        format_table(
            ["Graph", "R_avg", "Omega_avg", "MRR", "H@1", "H@10"],
            rows,
            title=f"Effectiveness ({len(votes)} votes: "
                  f"{votes.num_negative}-/{votes.num_positive}+)",
        )
    )
    return 0


def _cmd_scaling(args) -> int:
    import numpy as np

    from repro import generate_synthetic_votes, solve_multi_vote, solve_split_merge
    from repro.eval.harness import vote_omega_avg
    from repro.graph import AugmentedGraph, konect_like

    rows = []
    for num_votes in args.votes:
        kg = konect_like(args.dataset, scale=args.scale, seed=args.seed)
        aug = AugmentedGraph(kg)
        nodes = sorted(kg.nodes())
        rng = np.random.default_rng(args.seed + 1)
        for a in range(40):
            picks = rng.choice(len(nodes), size=3, replace=False)
            aug.add_answer(f"ans{a}", {nodes[int(i)]: 1 for i in picks})
        for q in range(num_votes):
            picks = rng.choice(len(nodes), size=2, replace=False)
            aug.add_query(f"qry{q}", {nodes[int(i)]: 1 for i in picks})
        votes = generate_synthetic_votes(
            aug, k=8, negative_fraction=0.5, avg_negative_position=4,
            seed=args.seed + 2,
        )
        multi_graph, multi = solve_multi_vote(aug, votes)
        sm_graph, sm = solve_split_merge(aug, votes)
        rows.append(
            [
                num_votes,
                f"{multi.elapsed:.2f}s",
                f"{sm.elapsed:.2f}s",
                f"{sm.distributed_makespan(4):.2f}s",
                f"{vote_omega_avg(multi_graph, votes):+.2f}",
                f"{vote_omega_avg(sm_graph, votes):+.2f}",
            ]
        )
    _LOG.info(
        format_table(
            ["votes", "Multi-V", "S-M", "Dist. S-M (4w)", "Ω multi", "Ω S-M"],
            rows,
            title=f"Scaling on {args.dataset} (scale x{args.scale})",
        )
    )
    return 0


def _cmd_similarity(args) -> int:
    import numpy as np

    from repro.graph import AugmentedGraph, random_digraph
    from repro.serving import SimilarityParams
    from repro.similarity import get_backend

    params = SimilarityParams()
    rows = []
    for num_answers in args.answers:
        kg = random_digraph(args.nodes, 4.0, seed=args.seed, out_mass=0.9)
        aug = AugmentedGraph(kg)
        nodes = sorted(kg.nodes())
        rng = np.random.default_rng(args.seed + 1)
        for a in range(num_answers):
            picks = rng.choice(len(nodes), size=3, replace=False)
            aug.add_answer(f"ans{a}", {nodes[int(i)]: 1 for i in picks})
        picks = rng.choice(len(nodes), size=3, replace=False)
        aug.add_query("query", {nodes[int(i)]: 1 for i in picks})
        answers = [f"ans{a}" for a in range(num_answers)]
        start = time.perf_counter()
        get_backend("random_walk").scores(
            aug.graph, "query", answers, params=params
        )
        rw = time.perf_counter() - start
        start = time.perf_counter()
        get_backend("dense").scores(aug.graph, "query", answers, params=params)
        pd = time.perf_counter() - start
        rows.append([num_answers, f"{rw:.3f}s", f"{pd:.3f}s", f"{rw / pd:.0f}x"])
    _LOG.info(
        format_table(
            ["|A|", "Random Walk [5]", "Ext. Inverse P-Distance", "speedup"],
            rows,
            title="Similarity evaluation time (Table VI in miniature)",
        )
    )
    return 0


def _stream_scenario(seed: int, num_votes: int):
    """Deterministic corrupted-helpdesk scenario for ``serve``/``recover``.

    Same seeds produce the same graph and vote stream, which is what
    lets ``recover`` bootstrap the identical fallback graph when a
    session crashed before its first snapshot.
    """
    import numpy as np

    from repro.graph import AugmentedGraph, helpdesk_graph
    from repro.graph.generators import perturb_weights
    from repro.votes import GroundTruthOracle, generate_votes_from_oracle

    kg, topics = helpdesk_graph(num_topics=4, entities_per_topic=8, seed=seed)
    entities = [e for members in topics.values() for e in members]
    noisy = perturb_weights(kg, noise=1.5, seed=seed + 1)

    def attach(base):
        aug = AugmentedGraph(base)
        rng = np.random.default_rng(seed + 2)
        for i in range(10):
            picks = rng.choice(len(entities), size=3, replace=False)
            aug.add_answer(f"a{i}", {entities[int(p)]: 1 for p in picks})
        for i in range(num_votes):
            picks = rng.choice(len(entities), size=2, replace=False)
            aug.add_query(f"q{i}", {entities[int(p)]: 1 for p in picks})
        return aug

    truth = attach(kg)
    deployed = attach(noisy)
    votes = generate_votes_from_oracle(
        deployed, GroundTruthOracle(truth), k=6, seed=seed + 3
    )
    return deployed, list(votes)


def _outcome_rows(history):
    return [
        [
            outcome.batch_index,
            outcome.num_votes,
            outcome.num_negative,
            outcome.strategy,
            f"{outcome.omega_avg:+.3f}",
            outcome.changed_edges,
            f"{outcome.elapsed:.2f}s",
        ]
        for outcome in history
    ]


def _cmd_serve(args) -> int:
    from repro.optimize.online import OnlineOptimizer
    from repro.persistence import DurableStore
    from repro.votes.stream import CountPolicy

    if args.workers not in (0, 1):
        _LOG.error(
            f"--workers must be 0 (inline) or 1 (background worker); "
            f"got {args.workers} — the supported topology is one serve "
            f"thread plus one optimizer worker"
        )
        return 2
    deployed, votes = _stream_scenario(args.seed, args.votes)
    store = DurableStore(args.wal_dir)
    online = OnlineOptimizer.recover(
        store,
        fallback=deployed,
        policy=CountPolicy(args.batch_size),
    )
    resumed_batches = len(online.history)
    resumed_pending = len(online.pending)
    if resumed_batches or resumed_pending:
        _LOG.info(
            f"resumed session from {args.wal_dir}: replay fired "
            f"{resumed_batches} batch(es), re-buffered {resumed_pending} "
            f"pending vote(s)"
        )
    if args.workers:
        return _serve_concurrent(args, online, store, votes)
    for vote in votes:
        online.submit(vote)
    _LOG.info(
        format_table(
            ["batch", "votes", "neg", "strategy", "Omega_avg", "changed", "time"],
            _outcome_rows(online.history),
            title=f"durable online session ({len(votes)} votes submitted)",
        )
    )
    _LOG.info(
        f"\nWAL last seq: {store.wal.last_seq}; "
        f"{len(online.pending)} vote(s) pending (durable in the WAL, "
        f"replayed on the next serve/recover); snapshots in {args.wal_dir}"
    )
    store.close()
    return 0


def _serve_concurrent(args, online, store, votes) -> int:
    """The ``serve --workers 1`` path: asks overlap the batch solves.

    The recovered optimizer's state is adopted by a background
    :class:`~repro.serving.worker.OptimizerWorker`; the main thread
    plays the serve role, interleaving engine reads with vote
    submissions while the worker solves batches on its shadow graph and
    publishes them as atomic weight-patch epochs.
    """
    from repro.obs import get_registry
    from repro.serving.engine import SimilarityEngine
    from repro.serving.worker import OptimizerWorker

    engine = SimilarityEngine(online.aug)
    worker = OptimizerWorker.from_online(online, engine=engine)
    queries = sorted(online.aug.query_nodes, key=repr)
    served = 0
    with worker:
        for index, vote in enumerate(votes):
            worker.submit(vote)
            # Interleave serves with ingest so asks genuinely overlap
            # the background solves.
            for offset in range(3):
                query = queries[(3 * index + offset) % len(queries)]
                engine.top_k(query, k=6)
                served += 1
    _LOG.info(
        format_table(
            ["batch", "votes", "neg", "strategy", "Omega_avg", "changed", "time"],
            _outcome_rows(worker.history),
            title=(
                f"concurrent serve session ({len(votes)} votes ingested, "
                f"{served} asks served alongside)"
            ),
        )
    )
    registry = get_registry()
    published = int(registry.counter("optimize_epochs_published_total").value)
    blocked = int(registry.counter("optimize_ingest_blocked_total").value)
    errors = int(registry.counter("optimize_worker_errors_total").value)
    _LOG.info(
        f"\nepochs published: {published}; ingest backpressure events: "
        f"{blocked}; worker errors: {errors}; engine epoch: {engine.epoch}"
    )
    _LOG.info(
        f"WAL last seq: {store.wal.last_seq}; "
        f"{worker.pending_votes} vote(s) pending (durable in the WAL, "
        f"replayed on the next serve/recover); snapshots in {args.wal_dir}"
    )
    if worker.last_error is not None:
        _LOG.error(f"worker saw an error: {worker.last_error}")
        store.close()
        return 1
    store.close()
    return 0


def _cmd_recover(args) -> int:
    from repro.graph.persistence import save_augmented_graph
    from repro.optimize.online import OnlineOptimizer
    from repro.persistence import DurableStore
    from repro.votes.stream import CountPolicy

    store = DurableStore(args.wal_dir)
    state = store.recover()
    if state.aug is None:
        _LOG.info(
            f"no snapshot in {args.wal_dir}; bootstrapping the simulated "
            f"scenario graph (--seed {args.seed})"
        )
        fallback, _ = _stream_scenario(args.seed, args.votes)
    else:
        _LOG.info(f"newest snapshot covers WAL seq {state.snapshot_seq}")
        fallback = None
    _LOG.info(f"WAL tail: {len(state.tail)} vote(s) to replay")
    online = OnlineOptimizer.recover(
        store,
        fallback=fallback,
        policy=CountPolicy(args.batch_size),
        state=state,
    )
    if online.history:
        _LOG.info(
            format_table(
                ["batch", "votes", "neg", "strategy", "Omega_avg", "changed", "time"],
                _outcome_rows(online.history),
                title="batches re-fired during replay",
            )
        )
    graph = online.aug
    _LOG.info(
        f"\nrecovered: {len(graph.entity_nodes)} entities, "
        f"{len(graph.query_nodes)} queries, {len(graph.answer_nodes)} answers, "
        f"{graph.graph.num_edges} edges; {len(online.pending)} vote(s) "
        f"re-buffered as pending"
    )
    if args.output:
        save_augmented_graph(graph, args.output)
        _LOG.info(f"recovered graph written to {args.output}")
    store.close()
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.devtools.lint import (
        GRAPH_RULES,
        RULES,
        find_dead_series,
        format_violations,
        lint_paths,
        violations_to_json,
    )

    rules = None
    if args.rules:
        rules = set(args.rules)
        unknown = rules - set(RULES)
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(RULES))}"
            )
    violations = lint_paths(args.paths, rules=rules)
    # R007 is a whole-tree property (a catalog entry is dead only if *no*
    # linted file emits it), so it runs once over all paths rather than
    # inside the per-file visitor.
    if rules is None or "R007" in rules:
        violations.extend(find_dead_series(args.paths))
    # R008-R011 need the call graph and shared-state registry; they run
    # over the whole tree via the concurrency analyzer.
    graph_rules = GRAPH_RULES if rules is None else rules & GRAPH_RULES
    if graph_rules:
        from repro.devtools.concurrency import find_concurrency_violations

        violations.extend(
            find_concurrency_violations(args.paths, rules=graph_rules)
        )
    violations.sort(key=lambda v: (v.path, v.line, v.rule, v.col))
    if getattr(args, "format", "table") == "json":
        _LOG.info(json.dumps(violations_to_json(violations), indent=2))
        return 1 if violations else 0
    if violations:
        _LOG.info(format_violations(violations))
        _LOG.info(
            f"{len(violations)} violation(s) in "
            f"{len({v.path for v in violations})} file(s)"
        )
        return 1
    _LOG.info(f"{len(args.paths)} path(s) clean")
    return 0


def _cmd_analyze(args) -> int:
    import json

    from repro.devtools.concurrency import CONCURRENCY_RULES, analyze_paths

    rules = None
    if args.rules:
        rules = set(args.rules)
        unknown = rules - CONCURRENCY_RULES
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(CONCURRENCY_RULES))}"
            )
    report = analyze_paths(args.paths, rules=rules)
    payload = report.to_json()
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        _LOG.info(f"analysis report written to {args.output}")
    if args.format == "json":
        _LOG.info(json.dumps(payload, indent=2))
    else:
        _LOG.info(report.render())
    return 1 if report.violations else 0


def _cmd_diag(args) -> int:
    import json

    from repro.obs.diag import load_bundle, render_bundle_report, render_health_report

    if args.bundle is None and args.metrics_json is None:
        raise ValueError("diag needs a flight bundle directory or --metrics-json")
    if args.bundle is not None:
        bundle = load_bundle(args.bundle)
        _LOG.info(render_bundle_report(bundle))
        return 0
    with open(args.metrics_json, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    _LOG.info(render_health_report(snapshot))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-kg",
        description=(
            "Voting-based knowledge-graph optimization "
            "(reproduction of Yang et al., ICDE 2020)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug verbosity (shortcut for --log-level debug)",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error"],
        help="logging threshold for CLI output (default: info)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table II dataset registry")

    demo = sub.add_parser("demo", help="run the ask/vote/optimize loop")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--k", type=int, default=8)

    eff = sub.add_parser("effectiveness", help="Tables IV/V in miniature")
    eff.add_argument("--seed", type=int, default=11)
    eff.add_argument("--noise", type=float, default=1.5)
    eff.add_argument("--votes", type=int, default=20)
    eff.add_argument("--test-queries", type=int, default=20)

    scaling = sub.add_parser("scaling", help="Fig. 6 in miniature")
    scaling.add_argument("--dataset", default="digg",
                         choices=["taobao", "twitter", "digg", "gnutella"])
    scaling.add_argument("--scale", type=float, default=0.01)
    scaling.add_argument("--votes", type=int, nargs="+", default=[5, 10, 20])
    scaling.add_argument("--seed", type=int, default=17)

    serve = sub.add_parser(
        "serve",
        help="run a simulated durable online session (vote WAL + snapshots)",
    )
    serve.add_argument(
        "--wal-dir", required=True, metavar="DIR",
        help="durability directory (votes.wal + snapshot-*.json); "
             "an existing session there is resumed first",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--votes", type=int, default=12,
                       help="simulated votes to stream this session")
    serve.add_argument("--batch-size", type=int, default=5,
                       help="CountPolicy batch size (use the same value "
                            "when recovering)")
    serve.add_argument("--workers", type=int, default=0,
                       help="0 = solve batches inline on the serve thread "
                            "(default); 1 = solve on a background optimizer "
                            "worker that publishes atomic weight-patch "
                            "epochs while asks keep being served")

    rec = sub.add_parser(
        "recover",
        help="rebuild a crashed serve session from its WAL directory",
    )
    rec.add_argument("--wal-dir", required=True, metavar="DIR")
    rec.add_argument("--seed", type=int, default=0,
                     help="scenario seed (only used when no snapshot exists)")
    rec.add_argument("--votes", type=int, default=12,
                     help="scenario size (only used when no snapshot exists)")
    rec.add_argument("--batch-size", type=int, default=5,
                     help="must match the serve session's batch size for "
                          "bit-exact replay")
    rec.add_argument("--output", metavar="PATH", default=None,
                     help="also write the recovered graph JSON to PATH")

    for instrumented in (demo, eff, scaling, serve, rec):
        instrumented.add_argument(
            "--metrics-json", metavar="PATH", default=None,
            help="dump the metrics registry snapshot to PATH after the run",
        )

    sim = sub.add_parser("similarity", help="Table VI in miniature")
    sim.add_argument("--nodes", type=int, default=1000)
    sim.add_argument("--answers", type=int, nargs="+", default=[20, 40, 80])
    sim.add_argument("--seed", type=int, default=3)

    lint = sub.add_parser(
        "lint", help="run the project's custom AST lint rules (R001-R011)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rules", nargs="+", metavar="R00X", default=None,
        help="restrict the run to these rule ids (default: all)",
    )
    lint.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format (default: table)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="concurrency-safety analysis: call graph, shared-state "
             "inventory, serve-path purity (R008-R011)",
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    analyze.add_argument(
        "--rules", nargs="+", metavar="R00X", default=None,
        help="restrict findings to these rule ids (default: R008-R011)",
    )
    analyze.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format (default: table)",
    )
    analyze.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the full JSON report to PATH",
    )

    diag = sub.add_parser(
        "diag",
        help="render a health report from a flight bundle or metrics snapshot",
    )
    diag.add_argument(
        "bundle", nargs="?", default=None, metavar="BUNDLE_DIR",
        help="flight-recorder bundle directory (contains MANIFEST.json)",
    )
    diag.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="grade a bare metrics snapshot (as written by the "
             "instrumented commands' --metrics-json) instead of a bundle",
    )

    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "demo": _cmd_demo,
    "effectiveness": _cmd_effectiveness,
    "scaling": _cmd_scaling,
    "similarity": _cmd_similarity,
    "serve": _cmd_serve,
    "recover": _cmd_recover,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "diag": _cmd_diag,
}


def _report_run_costs(args) -> None:
    """Print the cost breakdown and honour ``--metrics-json``."""
    from repro.obs import get_registry, last_trace, summary_table
    from repro.obs import write_metrics_json

    registry = get_registry()
    _LOG.info("\n" + summary_table(registry, title="cost breakdown"))
    trace = last_trace()
    if trace is not None:
        _LOG.debug("\nlast trace:\n" + trace.render())
    if getattr(args, "metrics_json", None):
        write_metrics_json(args.metrics_json, registry)
        _LOG.info(f"metrics snapshot written to {args.metrics_json}")


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    level = args.log_level or ("debug" if args.verbose else "info")
    _configure_logging(level)
    try:
        code = _COMMANDS[args.command](args)
    except Exception as exc:  # surface a clean message, not a traceback
        print(f"error: {exc}", file=sys.stderr)  # noqa: R003 - stderr, pre-logging
        return 1
    if code == 0 and args.command in _INSTRUMENTED_COMMANDS:
        _report_run_costs(args)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
