"""The durable feedback store: one WAL plus one snapshot directory.

:class:`DurableStore` is what the online loop actually talks to.  The
protocol (enforced by :class:`~repro.optimize.online.OnlineOptimizer`
in durable mode) is:

1. **log before apply** — every vote is :meth:`log_vote`\\ d (fsynced)
   *before* it enters the pending buffer;
2. **snapshot after flush** — after a batch is solved and applied,
   :meth:`checkpoint` atomically snapshots the graph stamped with the
   batch's last sequence, then rotates the WAL past it;
3. **recover = newest snapshot + WAL tail** — :meth:`recover` loads
   the newest valid snapshot and returns the WAL records past its
   sequence, which the optimizer replays through the *same* batching
   policy and solvers to reproduce the pre-crash weights bit for bit.

Crash windows and why each is safe:

- after ``log_vote``, before the batch fires: the vote is in the WAL
  tail, replay re-buffers it;
- during a flush (solve applied in memory, checkpoint not yet durable):
  the snapshot still predates the batch and the WAL still contains it,
  so replay re-runs the identical deterministic solve;
- during ``checkpoint`` itself: the snapshot rename is atomic, and a
  WAL left un-rotated only holds records ``<= snapshot seq`` that
  recovery filters out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path

from repro.graph.augmented import AugmentedGraph
from repro.obs import MetricsRegistry, get_registry, trace_span
from repro.obs.recorder import active_recorder
from repro.persistence.snapshot import SnapshotStore
from repro.persistence.wal import VoteWAL, WalRecord
from repro.votes.types import Vote

__all__ = ["DurableStore", "RecoveredState"]

#: File name of the vote WAL inside a store directory.
WAL_FILENAME = "votes.wal"


@dataclass(frozen=True)
class RecoveredState:
    """What :meth:`DurableStore.recover` found on disk.

    Attributes
    ----------
    aug:
        The graph from the newest valid snapshot, or ``None`` when no
        snapshot exists yet (the caller supplies the bootstrap graph).
    snapshot_seq:
        The WAL sequence the snapshot covers (0 without a snapshot).
    tail:
        WAL records past ``snapshot_seq``, in log order — the votes
        whose effects the snapshot does not yet include.
    """

    aug: "AugmentedGraph | None"
    snapshot_seq: int
    tail: tuple[WalRecord, ...] = field(default_factory=tuple)


class DurableStore:
    """A WAL + snapshot pair rooted in one directory.

    Parameters
    ----------
    directory:
        Store root; the WAL lives at ``<directory>/votes.wal`` and
        snapshots at ``<directory>/snapshot-*.json``.
    keep_snapshots:
        Retention bound forwarded to :class:`SnapshotStore`.
    registry:
        Metrics registry for the ``wal_*``/``snapshot_*`` series.
    """

    def __init__(
        self,
        directory: "str | Path",
        *,
        keep_snapshots: int = 2,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else get_registry()
        self.wal = VoteWAL(self._directory / WAL_FILENAME, registry=self.registry)
        self.snapshots = SnapshotStore(self._directory, registry=self.registry)
        # The WAL's sequence counter lives only in its records, so a
        # checkpoint that rotated the log empty forgets every sequence
        # already handed out; seed it past the newest snapshot or the
        # next append would reuse an acknowledged sequence and recovery
        # would filter the new vote out as already applied.
        self.wal.ensure_seq_at_least(self.snapshots.newest_seq())
        self._m_replayed = self.registry.counter("wal_replayed_total")
        self._m_recoveries = self.registry.counter("snapshot_recoveries_total")
        self._h_recover = self.registry.histogram("snapshot_recover_seconds")
        self._g_wal_lag = self.registry.gauge("wal_lag_records")
        self._g_snapshot_age = self.registry.gauge("snapshot_age_seconds")
        self._refresh_staleness()

    def _refresh_staleness(self) -> None:
        """Update the two staleness gauges a recovery-time estimate needs.

        ``wal_lag_records`` is the sequence distance between the WAL tail
        and the newest snapshot — the number of votes a recovery would
        replay (appends assign contiguous sequences, so distance equals
        record count in the normal regime).  ``snapshot_age_seconds`` is
        the newest snapshot file's write-time age (wall clock via
        ``datetime`` — monotonic time cannot be compared to an mtime).
        """
        snapshot_seq = self.snapshots.newest_seq()
        self._g_wal_lag.set(max(0, self.wal.last_seq - snapshot_seq))
        newest = self.snapshots.newest_path()
        if newest is not None:
            try:
                mtime = newest.stat().st_mtime
            except OSError:
                return
            age = datetime.now().timestamp() - mtime
            self._g_snapshot_age.set(max(0.0, age))

    @property
    def directory(self) -> Path:
        """The store's root directory."""
        return self._directory

    def log_vote(
        self,
        vote: Vote,
        *,
        links: "tuple[tuple, ...] | None" = None,
    ) -> int:
        """Durably append one vote; returns its WAL sequence number.

        ``links`` optionally records the voted query's out-link mapping
        with the record (see :class:`~repro.persistence.wal.WalRecord`)
        so recovery can re-attach queries a snapshot never saw.
        """
        seq = self.wal.append(vote, links=links)
        self._g_wal_lag.set(max(0, seq - self.snapshots.newest_seq()))
        return seq

    def checkpoint(self, aug: AugmentedGraph, last_applied_seq: int) -> Path:
        """Snapshot ``aug`` as covering ``last_applied_seq``, trim the WAL.

        The snapshot becomes durable (atomic rename) *before* any WAL
        record is dropped, so there is no ordering in which a vote is
        neither in a snapshot nor in the log.
        """
        path = self.snapshots.write(aug, last_applied_seq=last_applied_seq)
        self.wal.rotate(up_to_seq=last_applied_seq)
        self._refresh_staleness()
        rec = active_recorder()
        if rec is not None:
            rec.record(
                "wal.checkpoint",
                last_applied_seq=last_applied_seq,
                wal_records_kept=len(self.wal),
            )
        return path

    def recover(self) -> RecoveredState:
        """Load the newest valid snapshot and the WAL tail past it."""
        started = time.perf_counter()
        with trace_span("snapshot.recover") as span:
            latest = self.snapshots.latest()
            if latest is None:
                aug: "AugmentedGraph | None" = None
                snapshot_seq = 0
            else:
                aug, snapshot_seq = latest
            tail = tuple(self.wal.records(after_seq=snapshot_seq))
            if span.recording:
                span.set_attrs(
                    snapshot_seq=snapshot_seq,
                    tail_records=len(tail),
                    has_snapshot=aug is not None,
                )
        self._m_recoveries.inc()
        if tail:
            self._m_replayed.inc(len(tail))
        self._h_recover.observe(time.perf_counter() - started)
        self._refresh_staleness()
        rec = active_recorder()
        if rec is not None:
            rec.record(
                "wal.recover",
                snapshot_seq=snapshot_seq,
                tail_records=len(tail),
                has_snapshot=aug is not None,
            )
        return RecoveredState(aug=aug, snapshot_seq=snapshot_seq, tail=tail)

    def close(self) -> None:
        """Release the WAL file handle."""
        self.wal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DurableStore dir={str(self._directory)!r} "
            f"wal_last_seq={self.wal.last_seq}>"
        )
