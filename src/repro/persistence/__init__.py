"""Crash-safe durability for the online feedback loop.

The paper's framework is interactive: votes arrive continuously and
the graph is optimized *in place* (Algorithm 1, Eq. 19).  Without a
durability story, a process crash mid-batch silently loses every
unflushed vote and every optimized weight since the last manual save.
This subpackage makes the online loop restartable:

- :class:`~repro.persistence.wal.VoteWAL` — append-only,
  fsync-on-append JSONL vote log with monotonic sequence numbers and
  torn-tail tolerance;
- :class:`~repro.persistence.snapshot.SnapshotStore` — atomic
  (write-temp-then-rename) augmented-graph snapshots stamped with the
  last WAL sequence they cover;
- :class:`~repro.persistence.store.DurableStore` — the pair wired
  together with the log-before-apply / snapshot-after-flush protocol
  and a :meth:`~repro.persistence.store.DurableStore.recover` routine.

Recovery is deterministic: replaying the WAL tail through the same
batching policy and solvers reproduces the pre-crash edge weights bit
for bit (see ``OnlineOptimizer.recover`` and the kill-mid-flush test
in ``tests/test_failure_injection.py``).
"""

from repro.persistence.snapshot import SnapshotStore
from repro.persistence.store import DurableStore, RecoveredState
from repro.persistence.wal import VoteWAL, WalRecord

__all__ = [
    "DurableStore",
    "RecoveredState",
    "SnapshotStore",
    "VoteWAL",
    "WalRecord",
]
