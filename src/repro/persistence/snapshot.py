"""Periodic snapshots of the augmented graph, keyed by WAL sequence.

A snapshot is one atomically written augmented-graph JSON file (via
:func:`~repro.graph.persistence.save_augmented_graph`) whose ``meta``
mapping records ``last_applied_seq`` — the newest WAL sequence whose
vote is fully reflected in the stored weights.  Recovery loads the
newest *valid* snapshot and replays only the WAL records past that
mark; snapshots that fail to parse (e.g. a stray partial file from a
pre-atomic-write era, or bit rot) are skipped with a counter rather
than wedging recovery on the newest file.

File naming: ``snapshot-<seq:016d>.json`` inside the store directory,
so lexicographic order is recovery order and the directory doubles as
a human-readable history.  ``keep`` bounds how many old snapshots
survive each write.
"""

from __future__ import annotations

import re
import time
from pathlib import Path

from repro.errors import GraphError, PersistenceError
from repro.graph.augmented import AugmentedGraph
from repro.graph.persistence import (
    load_augmented_graph,
    read_augmented_graph_meta,
    save_augmented_graph,
)
from repro.obs import MetricsRegistry, get_registry, trace_span

__all__ = ["SnapshotStore"]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{16})\.json$")


class SnapshotStore:
    """Atomic, sequence-stamped snapshots of one augmented graph.

    Parameters
    ----------
    directory:
        Where snapshots live; created (with parents) when missing.
    keep:
        How many snapshots to retain after each :meth:`write` (the
        newest ones).  At least 1.
    registry:
        Metrics registry for the ``snapshot_*`` series.
    """

    def __init__(
        self,
        directory: "str | Path",
        *,
        keep: int = 2,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if keep < 1:
            raise PersistenceError(f"keep must be ≥ 1, got {keep}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep
        self.registry = registry if registry is not None else get_registry()
        self._m_writes = self.registry.counter("snapshot_writes_total")
        self._m_invalid = self.registry.counter("snapshot_invalid_total")
        self._g_last_seq = self.registry.gauge("snapshot_last_seq")
        self._h_write = self.registry.histogram("snapshot_write_seconds")

    @property
    def directory(self) -> Path:
        """The snapshot directory."""
        return self._directory

    def _snapshot_files(self) -> list[tuple[int, Path]]:
        """``(seq, path)`` pairs for every well-named file, newest first."""
        found = []
        for path in self._directory.iterdir():
            match = _SNAPSHOT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        found.sort(reverse=True)
        return found

    def write(self, aug: AugmentedGraph, *, last_applied_seq: int) -> Path:
        """Durably snapshot ``aug`` as covering ``last_applied_seq``.

        The write is atomic (temp file + rename), so a crash mid-write
        cannot shadow an older valid snapshot with a torn one.
        """
        if last_applied_seq < 0:
            raise PersistenceError(
                f"last_applied_seq must be ≥ 0, got {last_applied_seq}"
            )
        started = time.perf_counter()
        path = self._directory / f"snapshot-{last_applied_seq:016d}.json"
        with trace_span("snapshot.write", seq=last_applied_seq):
            save_augmented_graph(
                aug, path, meta={"last_applied_seq": last_applied_seq}
            )
        self._m_writes.inc()
        self._g_last_seq.set(last_applied_seq)
        self._h_write.observe(time.perf_counter() - started)
        self.prune()
        return path

    def prune(self) -> int:
        """Delete all but the ``keep`` newest snapshots; returns removed count."""
        removed = 0
        for _, path in self._snapshot_files()[self._keep:]:
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def newest_seq(self) -> int:
        """The highest sequence any on-disk snapshot claims to cover.

        Judged from the file names alone (no parsing): :meth:`write`
        derives the name from ``last_applied_seq``, and the caller —
        the durable store re-seeding its WAL counter — only needs a
        floor that no acknowledged sequence exceeds, so even a stray
        over-numbered file merely leaves a harmless gap.  Returns 0
        when no snapshot exists.
        """
        files = self._snapshot_files()
        return files[0][0] if files else 0

    def newest_path(self) -> "Path | None":
        """The newest on-disk snapshot file (by claimed sequence), or
        ``None`` — what staleness gauges ``stat`` for the write time."""
        files = self._snapshot_files()
        return files[0][1] if files else None

    def latest(self) -> "tuple[AugmentedGraph, int] | None":
        """The newest *loadable* snapshot as ``(graph, last_applied_seq)``.

        Invalid snapshot files are skipped (and counted on
        ``snapshot_invalid_total``); ``None`` means no usable snapshot
        exists at all.  "Invalid" covers any failure to read the file
        or make sense of its structure — not just well-formed
        :class:`~repro.errors.GraphError` rejections but also missing
        keys, mis-shaped edge entries, non-numeric weights, and a file
        deleted between listing and reading — so one rotten snapshot
        can never wedge recovery when an older valid one exists.
        """
        for name_seq, path in self._snapshot_files():
            try:
                # Meta first: rejecting a bad sequence is cheap, the
                # graph parse is not.
                meta = read_augmented_graph_meta(path)
                seq = meta.get("last_applied_seq", name_seq)
                # bool is an int subclass; True must not pass as seq 1.
                if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
                    self._m_invalid.inc()
                    continue
                aug = load_augmented_graph(path)
            except (GraphError, KeyError, TypeError, ValueError, OSError):
                self._m_invalid.inc()
                continue
            return aug, seq
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        files = self._snapshot_files()
        newest = files[0][0] if files else None
        return (
            f"<SnapshotStore dir={str(self._directory)!r} "
            f"count={len(files)} newest_seq={newest}>"
        )
