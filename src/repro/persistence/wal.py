"""Append-only, fsync-on-append write-ahead log for votes.

The online loop's durability contract is *log before apply*: a vote is
appended (and fsynced) to the WAL before it enters the optimizer's
pending buffer, so once ``submit()`` returns, a crash at any later
point cannot lose it — recovery replays the log tail onto the newest
snapshot and reproduces the pre-crash state deterministically.

File format: one JSON record per line, ::

    {"seq": 42, "vote": {"query": ..., "ranked_answers": [...],
                         "best_answer": ..., "weight": 1.0}}

``seq`` is a strictly increasing sequence number assigned at append
time; snapshots record the last sequence they cover, and rotation
drops every record at or below that mark.

Torn-write tolerance: a crash can leave a *partial final line* (the
append was cut mid-write, which also means it never fsynced and the
vote was never acknowledged).  On open, such a tail is truncated away
and counted on ``wal_torn_records_total``.  A final line that *is*
newline-terminated but fails to parse is also dropped — usually the
crash landed inside a buffered flush — but because a terminated record
may instead be an fsynced (acknowledged) vote whose bytes rotted
later, that case is additionally logged as a warning so the operator
can tell the two apart.  A malformed record anywhere *before* the
tail means real corruption and raises
:class:`~repro.errors.PersistenceError` instead of guessing.

The sequence counter is in-memory state seeded at open time.  A WAL
that was rotated empty carries no record of the sequences it already
handed out, so :class:`~repro.persistence.store.DurableStore` re-seeds
the counter from its newest snapshot via :meth:`VoteWAL.ensure_seq_at_least`
— without that, a restart after a draining checkpoint would reuse
sequence numbers at or below the snapshot's and recovery would filter
the new votes out as already applied.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import PersistenceError
from repro.utils.sync import mutator
from repro.graph.persistence import fsync_directory
from repro.obs import MetricsRegistry, get_registry
from repro.obs.recorder import active_recorder
from repro.votes.types import Vote

__all__ = ["WalRecord", "VoteWAL", "vote_to_payload", "vote_from_payload"]

logger = logging.getLogger(__name__)

#: JSON-native scalar types a vote's node ids may use.  Anything else
#: (tuples, custom objects) would not survive the JSON round trip
#: losslessly, so the WAL rejects it up front.
_SCALAR_TYPES = (str, int, float, bool)


def _check_scalar(value: object, what: str) -> None:
    if not isinstance(value, _SCALAR_TYPES):
        raise PersistenceError(
            f"{what} {value!r} is not JSON-serializable; WAL votes must "
            f"use str/int/float node ids"
        )


def vote_to_payload(vote: Vote) -> dict:
    """A vote as a JSON-serializable mapping (lossless for scalar ids)."""
    _check_scalar(vote.query, "vote query")
    for answer in vote.ranked_answers:
        _check_scalar(answer, "vote answer")
    return {
        "query": vote.query,
        "ranked_answers": list(vote.ranked_answers),
        "best_answer": vote.best_answer,
        "weight": vote.weight,
    }


def vote_from_payload(payload: dict) -> Vote:
    """Rebuild a :class:`~repro.votes.types.Vote` from its WAL payload."""
    try:
        return Vote(
            query=payload["query"],
            ranked_answers=tuple(payload["ranked_answers"]),
            best_answer=payload["best_answer"],
            weight=float(payload.get("weight", 1.0)),
        )
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed WAL vote payload: {payload!r}") from exc


@dataclass(frozen=True)
class WalRecord:
    """One durable vote: its sequence number and the vote itself.

    ``links`` optionally captures the voted query's out-link mapping
    (``((entity, weight), ...)``) at submit time.  The concurrent
    ingest path records it so recovery can re-attach tail-vote queries
    to the graph before replaying them — a vote logged just before a
    crash may reference a query node no snapshot ever saw.  Plain
    single-threaded submits leave it ``None``; old logs parse fine.
    """

    seq: int
    vote: Vote
    links: "tuple[tuple, ...] | None" = None


def _record_payload(record: WalRecord) -> dict:
    """A record as the JSON payload written to the log."""
    payload: dict = {
        "seq": record.seq,
        "vote": vote_to_payload(record.vote),
    }
    if record.links is not None:
        payload["links"] = [
            [entity, weight] for entity, weight in record.links
        ]
    return payload


def _record_line(record: WalRecord) -> bytes:
    return (
        json.dumps(
            _record_payload(record), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        + b"\n"
    )


def _parse_record(line: bytes, *, path: Path, line_no: int) -> WalRecord:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(
            f"{path}:{line_no}: corrupt WAL record (not valid JSON)"
        ) from exc
    if not isinstance(payload, dict) or "seq" not in payload or "vote" not in payload:
        raise PersistenceError(
            f"{path}:{line_no}: corrupt WAL record (missing seq/vote)"
        )
    seq = payload["seq"]
    if not isinstance(seq, int) or seq < 1:
        raise PersistenceError(
            f"{path}:{line_no}: corrupt WAL record (bad sequence {seq!r})"
        )
    links = payload.get("links")
    parsed_links: "tuple[tuple, ...] | None" = None
    if links is not None:
        try:
            parsed_links = tuple(
                (entity, float(weight)) for entity, weight in links
            )
        except (TypeError, ValueError) as exc:
            raise PersistenceError(
                f"{path}:{line_no}: corrupt WAL record (bad links)"
            ) from exc
    return WalRecord(
        seq=seq,
        vote=vote_from_payload(payload["vote"]),
        links=parsed_links,
    )


def _scan(path: Path) -> tuple[list[WalRecord], int, int]:
    """Parse a WAL file: ``(records, valid_byte_length, torn_records)``.

    The *last* line is allowed to be torn (missing newline or unparsable)
    — it is dropped and counted.  Any earlier parse failure raises.
    """
    raw = path.read_bytes()
    records: list[WalRecord] = []
    valid_end = 0
    offset = 0
    line_no = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        line_no += 1
        if newline == -1:
            # No terminator: the final append was cut mid-write.
            return records, valid_end, 1
        line = raw[offset:newline]
        try:
            record = _parse_record(line, path=path, line_no=line_no)
        except PersistenceError as exc:
            if newline == len(raw) - 1:
                # Terminated but unparsable final line: treated as a torn
                # tail (e.g. the crash landed inside a buffered flush) —
                # but unlike the missing-newline case this record *may*
                # have been fsynced and acknowledged before rotting, so
                # say so out loud instead of only bumping a counter.
                logger.warning(
                    "%s: discarding newline-terminated but unparsable final "
                    "WAL record (%s); if this record was ever acknowledged, "
                    "one vote has been lost to corruption",
                    path,
                    exc,
                )
                return records, valid_end, 1
            raise
        if records and record.seq <= records[-1].seq:
            raise PersistenceError(
                f"{path}:{line_no}: WAL sequence went backwards "
                f"({records[-1].seq} -> {record.seq})"
            )
        records.append(record)
        valid_end = newline + 1
        offset = newline + 1
    return records, valid_end, 0


class VoteWAL:
    """The vote write-ahead log over one JSONL file.

    Parameters
    ----------
    path:
        The log file; created (with parents) when missing.  Opening an
        existing file replays it into memory, truncates a torn tail,
        and resumes the sequence counter after the last valid record.
    registry:
        Metrics registry for the ``wal_*`` series (defaults to the
        process-wide one).
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # Serializes the ingest thread's append against the optimizer
        # worker's rotate: both touch the file handle, the in-memory
        # record mirror, and the sequence counter.
        self._wal_lock = threading.Lock()
        self.registry = registry if registry is not None else get_registry()
        self._m_appends = self.registry.counter("wal_appends_total")
        self._m_rotations = self.registry.counter("wal_rotations_total")
        self._m_torn = self.registry.counter("wal_torn_records_total")
        self._g_last_seq = self.registry.gauge("wal_last_seq")
        self._h_append = self.registry.histogram("wal_append_seconds")

        if self._path.exists():
            self._records, valid_end, torn = _scan(self._path)
            if torn:
                self._m_torn.inc(torn)
                with open(self._path, "r+b") as handle:
                    handle.truncate(valid_end)
                    os.fsync(handle.fileno())
        else:
            self._records = []
        self._file = open(self._path, "ab")
        fsync_directory(self._path.parent)
        self._last_seq = self._records[-1].seq if self._records else 0
        self._g_last_seq.set(self._last_seq)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The underlying log file."""
        return self._path

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._last_seq

    def records(self, *, after_seq: int = 0) -> list[WalRecord]:
        """Durable records with ``seq > after_seq``, in log order."""
        return [r for r in self._records if r.seq > after_seq]

    def ensure_seq_at_least(self, seq: int) -> None:
        """Advance the sequence counter to at least ``seq``.

        The counter only lives in the log's records, so a rotation that
        drains the WAL forgets every sequence already handed out; on
        reopen the owner must bump the counter past the newest
        snapshot's ``last_applied_seq``, or fresh appends would reuse
        acknowledged sequence numbers and recovery would silently
        filter them out as already applied.  Never rewinds.
        """
        if seq < 0:
            raise PersistenceError(f"sequence floor must be ≥ 0, got {seq}")
        with self._wal_lock:
            if seq > self._last_seq:
                self._last_seq = seq
                self._g_last_seq.set(seq)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # the durability-critical operations
    # ------------------------------------------------------------------
    @mutator
    def append(
        self,
        vote: Vote,
        *,
        links: "tuple[tuple, ...] | None" = None,
    ) -> int:
        """Durably log one vote; returns its sequence number.

        The record is written, flushed, and **fsynced** before this
        method returns — once the caller sees the sequence number, no
        crash can lose the vote.  ``links`` optionally records the
        voted query's out-link mapping so recovery can re-attach the
        query before replaying (the concurrent ingest path's
        log-before-enqueue contract).
        """
        if links is not None:
            for entity, _weight in links:
                _check_scalar(entity, "vote query link entity")
        started = time.perf_counter()
        with self._wal_lock:
            if self._file.closed:
                raise PersistenceError(f"{self._path}: WAL is closed")
            seq = self._last_seq + 1
            record = WalRecord(seq=seq, vote=vote, links=links)
            self._file.write(_record_line(record))
            self._file.flush()
            os.fsync(self._file.fileno())
            self._records.append(record)
            self._last_seq = seq
        self._m_appends.inc()
        self._g_last_seq.set(seq)
        elapsed = time.perf_counter() - started
        self._h_append.observe(elapsed)
        rec = active_recorder()
        if rec is not None:
            rec.record_timed("wal.append", elapsed, seq=seq)
        return seq

    def rotate(self, *, up_to_seq: int) -> int:
        """Drop every record with ``seq <= up_to_seq``; returns kept count.

        Called after a snapshot covering ``up_to_seq`` is durable: the
        dropped records are fully reflected in the snapshot and replay
        must not see them again.  The survivors are rewritten to a
        temporary file that atomically replaces the log, so a crash
        mid-rotation leaves either the full old log (harmless: recovery
        filters ``seq <= snapshot``) or the complete trimmed one.
        Holds the WAL lock throughout — a concurrent append lands
        either in the old file before the swap or in the new one after,
        never in the replaced orphan.
        """
        with self._wal_lock:
            survivors = [r for r in self._records if r.seq > up_to_seq]
            if len(survivors) == len(self._records):
                return len(survivors)
            tmp = self._path.with_name(self._path.name + ".tmp")
            with open(tmp, "wb") as handle:
                for record in survivors:
                    handle.write(_record_line(record))
                handle.flush()
                os.fsync(handle.fileno())
            self._file.close()
            os.replace(tmp, self._path)
            fsync_directory(self._path.parent)
            self._file = open(self._path, "ab")
            self._records = survivors
            # The sequence counter never rewinds: new appends continue
            # strictly after every sequence ever handed out.
        self._m_rotations.inc()
        return len(survivors)

    def close(self) -> None:
        """Close the underlying file handle (records stay on disk)."""
        with self._wal_lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "VoteWAL":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<VoteWAL path={str(self._path)!r} records={len(self._records)} "
            f"last_seq={self._last_seq}>"
        )
