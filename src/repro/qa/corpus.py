"""Synthetic help-desk corpus generation (the Taobao stand-in).

Section VII-A1 builds its effectiveness dataset from 2,379 Taobao
customer-service questions with HELP documents, yielding a knowledge
graph of 1,663 nodes and 17,591 edges, plus 100 user-study votes and
100 expert test pairs.  The corpus is proprietary; this generator
produces a synthetic corpus with the same *structure*:

- a topical entity vocabulary (entities cluster into service domains —
  "refund", "cart", "Juhuasuan"-style terms — which is also what makes
  the split step meaningful, Section VI-A);
- HELP documents, each centred on one topic, written as token streams
  over that topic's entities plus generic filler;
- questions, each targeting one document (its ground-truth best
  answer), phrased with a subset of that document's entities plus a
  pinch of cross-topic noise.

Everything is deterministic given the seed, so experiments are exactly
repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CorpusError
from repro.qa.entities import EntityVocabulary
from repro.utils.rng import ensure_rng

#: Topic name stems used to synthesize entity vocabulary.
_TOPIC_STEMS = (
    "refund", "cart", "shipping", "account", "payment", "coupon",
    "review", "seller", "dispute", "logistics", "promotion", "invoice",
    "wishlist", "membership", "voucher", "aftersale",
)

_FILLER = (
    "how", "do", "i", "the", "a", "my", "please", "help", "with",
    "cannot", "issue", "problem", "about", "when", "why",
)


@dataclass(frozen=True)
class Document:
    """One HELP document: an identifier and its text."""

    doc_id: str
    text: str
    topic: str


@dataclass(frozen=True)
class QAPair:
    """One question with its ground-truth best document."""

    question_id: str
    text: str
    best_doc: str


@dataclass
class HelpdeskCorpus:
    """A synthetic help-desk corpus.

    Attributes
    ----------
    vocabulary:
        The entity vocabulary shared by documents and questions.
    documents:
        The HELP documents (the answer pool).
    train_pairs / test_pairs:
        Question–document pairs; the train split feeds the voting loop,
        the test split is held out for evaluation (mirroring the paper's
        100 user questions + 100 expert pairs).
    topics:
        ``topic -> entity names``.
    """

    vocabulary: EntityVocabulary
    documents: list[Document] = field(default_factory=list)
    train_pairs: list[QAPair] = field(default_factory=list)
    test_pairs: list[QAPair] = field(default_factory=list)
    topics: dict[str, list[str]] = field(default_factory=dict)

    def document_texts(self) -> dict[str, str]:
        """``doc_id -> text`` mapping."""
        return {doc.doc_id: doc.text for doc in self.documents}


def _make_vocabulary(num_topics: int, entities_per_topic: int) -> dict[str, list[str]]:
    if num_topics > len(_TOPIC_STEMS):
        stems = [f"domain{i}" for i in range(num_topics)]
    else:
        stems = list(_TOPIC_STEMS[:num_topics])
    topics = {}
    for stem in stems:
        topics[stem] = [f"{stem}_{i}" for i in range(entities_per_topic)]
    return topics


def generate_helpdesk_corpus(
    *,
    num_topics: int = 8,
    entities_per_topic: int = 10,
    docs_per_topic: int = 4,
    num_train_questions: int = 60,
    num_test_questions: int = 40,
    doc_length: int = 40,
    question_entities: int = 3,
    cross_topic_noise: float = 0.1,
    seed: "int | None | np.random.Generator" = None,
) -> HelpdeskCorpus:
    """Generate a deterministic synthetic help-desk corpus.

    Parameters
    ----------
    num_topics, entities_per_topic:
        Vocabulary shape.
    docs_per_topic:
        HELP documents per topic; each samples a Zipf-like mixture of
        its topic's entities so that documents of the same topic overlap
        but are not identical.
    num_train_questions, num_test_questions:
        Question counts for the two splits.
    doc_length:
        Tokens per document (entities + filler).
    question_entities:
        Distinct entities mentioned per question.
    cross_topic_noise:
        Probability that a question token is drawn from a *different*
        topic — the realistic ambiguity that makes ranking non-trivial.
    """
    if num_topics < 2 or entities_per_topic < 2:
        raise CorpusError("need at least 2 topics and 2 entities per topic")
    if docs_per_topic < 1:
        raise CorpusError("need at least one document per topic")
    rng = ensure_rng(seed)
    topics = _make_vocabulary(num_topics, entities_per_topic)
    vocabulary = EntityVocabulary(
        [entity for members in topics.values() for entity in members]
    )
    topic_names = list(topics)

    documents: list[Document] = []
    for topic in topic_names:
        members = topics[topic]
        # Zipf-ish emphasis: each document focuses on a random subset.
        for d in range(docs_per_topic):
            focus_size = max(2, entities_per_topic // 2)
            focus_idx = rng.choice(len(members), size=focus_size, replace=False)
            focus = [members[int(i)] for i in focus_idx]
            weights = 1.0 / np.arange(1, len(focus) + 1)
            weights /= weights.sum()
            tokens: list[str] = []
            for _ in range(doc_length):
                if rng.uniform() < 0.55:
                    tokens.append(focus[int(rng.choice(len(focus), p=weights))])
                else:
                    tokens.append(_FILLER[int(rng.integers(0, len(_FILLER)))])
            documents.append(
                Document(
                    doc_id=f"doc_{topic}_{d}",
                    text=" ".join(tokens),
                    topic=topic,
                )
            )

    def make_questions(count: int, prefix: str) -> list[QAPair]:
        pairs = []
        for q in range(count):
            doc = documents[int(rng.integers(0, len(documents)))]
            doc_entities = list(vocabulary.extract(doc.text))
            if not doc_entities:
                continue
            k = min(question_entities, len(doc_entities))
            picked_idx = rng.choice(len(doc_entities), size=k, replace=False)
            picked = [doc_entities[int(i)] for i in picked_idx]
            tokens = []
            for entity in picked:
                if rng.uniform() < cross_topic_noise:
                    other_topic = topic_names[int(rng.integers(0, len(topic_names)))]
                    noise_members = topics[other_topic]
                    tokens.append(
                        noise_members[int(rng.integers(0, len(noise_members)))]
                    )
                else:
                    tokens.append(entity)
                tokens.append(_FILLER[int(rng.integers(0, len(_FILLER)))])
            pairs.append(
                QAPair(
                    question_id=f"{prefix}{q}",
                    text=" ".join(tokens),
                    best_doc=doc.doc_id,
                )
            )
        return pairs

    return HelpdeskCorpus(
        vocabulary=vocabulary,
        documents=documents,
        train_pairs=make_questions(num_train_questions, "train_q"),
        test_pairs=make_questions(num_test_questions, "test_q"),
        topics=topics,
    )
