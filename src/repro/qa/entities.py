"""Entity extraction.

The paper extracts technical-term entities from questions and HELP
documents "by using the sequential labelling method [5]" and links text
to the knowledge graph through occurrence counts.  The extractor is a
black box to the rest of the framework — all downstream code consumes
``{entity: count}`` mappings — so this module provides the simplest
faithful substitute: a vocabulary-driven extractor over normalized
tokens, with support for multi-word entities via greedy longest-match.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable

from repro.errors import CorpusError

_TOKEN_RE = re.compile(r"[a-z0-9_]+")


def tokenize(text: str) -> list[str]:
    """Lowercase and split ``text`` into alphanumeric tokens."""
    return _TOKEN_RE.findall(text.lower())


class EntityVocabulary:
    """A closed vocabulary of entity terms with an extractor.

    Parameters
    ----------
    entities:
        Entity names.  Multi-word entities ("send message") are matched
        greedily, longest first, over the token stream.

    Notes
    -----
    Matching is case-insensitive and non-overlapping: once a multi-word
    entity consumes tokens, those tokens cannot also match a shorter
    entity — the behaviour a practical NER stage exhibits.
    """

    def __init__(self, entities: Iterable[str]) -> None:
        self._phrases: dict[tuple[str, ...], str] = {}
        for entity in entities:
            token_key = tuple(tokenize(entity))
            if not token_key:
                raise CorpusError(f"entity {entity!r} contains no tokens")
            if token_key in self._phrases:
                raise CorpusError(
                    f"entities {entity!r} and {self._phrases[token_key]!r} "
                    f"normalize to the same tokens"
                )
            self._phrases[token_key] = entity
        if not self._phrases:
            raise CorpusError("an entity vocabulary cannot be empty")
        self._max_len = max(len(k) for k in self._phrases)

    @property
    def entities(self) -> frozenset[str]:
        """The canonical entity names."""
        return frozenset(self._phrases.values())

    def __len__(self) -> int:
        return len(self._phrases)

    def __contains__(self, entity: str) -> bool:
        return tuple(tokenize(entity)) in self._phrases

    def extract(self, text: str) -> Counter:
        """Count entity occurrences in ``text``.

        Returns a :class:`collections.Counter` of canonical entity names
        (empty when no entity matches).  Greedy longest-match: at each
        position the longest vocabulary phrase starting there wins.
        """
        tokens = tokenize(text)
        counts: Counter = Counter()
        position = 0
        while position < len(tokens):
            matched = 0
            for length in range(min(self._max_len, len(tokens) - position), 0, -1):
                window = tuple(tokens[position : position + length])
                entity = self._phrases.get(window)
                if entity is not None:
                    counts[entity] += 1
                    matched = length
                    break
            position += matched if matched else 1
        return counts

    def extract_many(self, texts: Iterable[str]) -> list[Counter]:
        """Extract from several texts (convenience for corpus builders)."""
        return [self.extract(text) for text in texts]
