"""The interactive Q&A framework (Fig. 1's loop, end to end).

:class:`QASystem` wires the substrates into the workflow the paper
describes: documents are attached as answer nodes; a question is
attached as a query node and answered with a ranked top-k list; the
user's vote (explicit, or implicit as in the e-commerce/click examples
of Section I) is recorded; accumulated votes are turned into an edge
weight optimization with any of the three solution strategies; and the
improved graph immediately serves the next question.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import CorpusError, EvaluationError, VoteError
from repro.eval.harness import EvaluationResult, evaluate_test_set
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import WeightedDiGraph
from repro.optimize.multi_vote import MultiVoteReport, solve_multi_vote
from repro.optimize.single_vote import SingleVoteReport, solve_single_votes
from repro.optimize.split_merge import SplitMergeReport, solve_split_merge
from repro.qa.entities import EntityVocabulary
from repro.similarity.top_k import rank_answers
from repro.votes.types import Vote, VoteSet


class QASystem:
    """A knowledge-graph Q&A system with voting-based optimization.

    Parameters
    ----------
    kg:
        The entity knowledge graph (e.g. from
        :func:`repro.qa.kg_builder.build_knowledge_graph`).
    vocabulary:
        Entity extractor used to link questions/documents to the graph.
    k:
        Length of returned answer lists (paper default 20).
    max_length, restart_prob:
        Similarity-evaluation parameters (``L`` and ``c``).
    """

    def __init__(
        self,
        kg: WeightedDiGraph,
        vocabulary: EntityVocabulary,
        *,
        k: int = 20,
        max_length: int = 5,
        restart_prob: float = 0.15,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be ≥ 1, got {k}")
        self._aug = AugmentedGraph(kg)
        self._vocabulary = vocabulary
        self.k = k
        self.max_length = max_length
        self.restart_prob = restart_prob
        self._shown: dict[str, tuple[str, ...]] = {}
        self._votes = VoteSet()
        self._question_counter = 0

    # ------------------------------------------------------------------
    # corpus attachment
    # ------------------------------------------------------------------
    def add_document(self, doc_id: str, text: str) -> bool:
        """Attach a HELP document as an answer node.

        Returns ``False`` (and attaches nothing) when the document
        mentions no known entity — it could never be reached by a
        random walk anyway.
        """
        counts = self._vocabulary.extract(text)
        counts = {e: c for e, c in counts.items() if self._aug.is_entity(e)}
        if not counts:
            return False
        self._aug.add_answer(doc_id, counts)
        return True

    def add_documents(self, documents: Mapping[str, str]) -> list[str]:
        """Attach many documents; returns the ids actually attached."""
        attached = []
        for doc_id, text in documents.items():
            if self.add_document(doc_id, text):
                attached.append(doc_id)
        return attached

    # ------------------------------------------------------------------
    # the ask / vote loop
    # ------------------------------------------------------------------
    def ask(self, question: str, *, question_id: "str | None" = None) -> list[tuple[str, float]]:
        """Answer a question with a ranked top-k document list.

        The question is linked to the graph through its extracted
        entities and the shown list is remembered so a later
        :meth:`vote` can reference it.

        Raises
        ------
        CorpusError
            When the question mentions no entity known to the graph.
        """
        if question_id is None:
            question_id = f"__q{self._question_counter}"
            self._question_counter += 1
        counts = self._vocabulary.extract(question)
        counts = {e: c for e, c in counts.items() if self._aug.is_entity(e)}
        if not counts:
            raise CorpusError(
                f"question {question!r} mentions no entity known to the graph"
            )
        if question_id in self._aug.query_nodes:
            self._aug.remove_query(question_id)
        self._aug.add_query(question_id, counts)
        ranked = rank_answers(
            self._aug,
            question_id,
            k=self.k,
            max_length=self.max_length,
            restart_prob=self.restart_prob,
        )
        self._shown[question_id] = tuple(answer for answer, _ in ranked)
        return [(str(answer), score) for answer, score in ranked]

    def vote(self, question_id: str, best_doc: str) -> Vote:
        """Record the user's vote for ``question_id``'s best document.

        The vote is positive when ``best_doc`` was already on top of the
        shown list, negative otherwise (Definition 2).
        """
        shown = self._shown.get(question_id)
        if shown is None:
            raise VoteError(
                f"no answer list was shown for question {question_id!r}"
            )
        if best_doc not in shown:
            raise VoteError(
                f"{best_doc!r} was not among the answers shown for "
                f"{question_id!r}"
            )
        vote = Vote(query=question_id, ranked_answers=shown, best_answer=best_doc)
        self._votes.add(vote)
        return vote

    @property
    def pending_votes(self) -> VoteSet:
        """Votes collected since the last :meth:`optimize`."""
        return self._votes

    # ------------------------------------------------------------------
    # optimization
    # ------------------------------------------------------------------
    def optimize(
        self,
        *,
        strategy: str = "multi",
        clear_votes: bool = True,
        **options,
    ) -> "MultiVoteReport | SingleVoteReport | SplitMergeReport":
        """Optimize the graph against the pending votes.

        Parameters
        ----------
        strategy:
            ``"multi"`` (Section V), ``"single"`` (Algorithm 1), or
            ``"split-merge"`` (Section VI).
        clear_votes:
            Drop the pending votes after applying them (they are spent).
        options:
            Forwarded to the chosen driver (``lambda1``, ``sigmoid_w``,
            ``solver_method``, ``num_workers``, ...).
        """
        if not len(self._votes):
            raise VoteError("no pending votes to optimize against")
        options.setdefault("max_length", self.max_length)
        options.setdefault("restart_prob", self.restart_prob)
        if strategy == "multi":
            _, report = solve_multi_vote(
                self._aug, self._votes, in_place=True, **options
            )
        elif strategy == "single":
            _, report = solve_single_votes(
                self._aug, self._votes, in_place=True, **options
            )
        elif strategy == "split-merge":
            _, report = solve_split_merge(
                self._aug, self._votes, in_place=True, **options
            )
        else:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected 'multi', 'single', "
                f"or 'split-merge'"
            )
        if clear_votes:
            self._votes = VoteSet()
        return report

    # ------------------------------------------------------------------
    # evaluation & access
    # ------------------------------------------------------------------
    @property
    def augmented_graph(self) -> AugmentedGraph:
        """The live augmented graph (entities + questions + documents)."""
        return self._aug

    def evaluate(
        self,
        test_questions: Mapping[str, str],
        test_pairs: Mapping[str, str],
        *,
        k_values: Sequence[int] = (1, 3, 5, 10),
    ) -> EvaluationResult:
        """Evaluate ranking quality on held-out question–document pairs.

        Parameters
        ----------
        test_questions:
            ``question_id -> question text``; attached temporarily.
        test_pairs:
            ``question_id -> ground-truth best document id``.
        """
        attached: list[str] = []
        pairs: dict[str, str] = {}
        try:
            for question_id, text in test_questions.items():
                counts = self._vocabulary.extract(text)
                counts = {
                    e: c for e, c in counts.items() if self._aug.is_entity(e)
                }
                if not counts or question_id not in test_pairs:
                    continue
                if test_pairs[question_id] not in self._aug.answer_nodes:
                    continue
                self._aug.add_query(question_id, counts)
                attached.append(question_id)
                pairs[question_id] = test_pairs[question_id]
            if not pairs:
                raise EvaluationError(
                    "no test question could be linked to the graph"
                )
            return evaluate_test_set(
                self._aug,
                pairs,
                k_values=k_values,
                max_length=self.max_length,
                restart_prob=self.restart_prob,
            )
        finally:
            for question_id in attached:
                self._aug.remove_query(question_id)
