"""The interactive Q&A framework (Fig. 1's loop, end to end).

:class:`QASystem` wires the substrates into the workflow the paper
describes: documents are attached as answer nodes; a question is
attached as a query node and answered with a ranked top-k list; the
user's vote (explicit, or implicit as in the e-commerce/click examples
of Section I) is recorded; accumulated votes are turned into an edge
weight optimization with any of the three solution strategies; and the
improved graph immediately serves the next question.

Serving is delegated to a :class:`~repro.serving.engine.SimilarityEngine`
(the versioned cached-adjacency subsystem), so repeated questions
against an unchanged graph cost a cache lookup instead of an ``O(|E|)``
matrix rebuild, and :meth:`QASystem.ask_many` answers whole batches
with one stacked propagation.  Similarity parameters travel as one
:class:`~repro.serving.params.SimilarityParams` object (which also
selects the propagation backend); the historical
``k``/``max_length``/``restart_prob`` keyword arguments are removed and
raise ``TypeError`` with a migration hint.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from time import perf_counter

from repro.errors import CorpusError, EvaluationError, VoteError
from repro.eval.harness import EvaluationResult, evaluate_test_set
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import WeightedDiGraph
from repro.obs import get_registry, trace_span
from repro.obs.recorder import active_recorder
from repro.optimize.multi_vote import solve_multi_vote
from repro.optimize.report import OptimizeReport
from repro.optimize.single_vote import solve_single_votes
from repro.optimize.split_merge import solve_split_merge
from repro.qa.entities import EntityVocabulary
from repro.serving.engine import DEFAULT_CACHE_SIZE, EngineStats, SimilarityEngine
from repro.serving.params import SimilarityParams, resolve_similarity_params
from repro.similarity.top_k import rank_answers
from repro.utils.sync import mutator, serve_path
from repro.votes.types import Vote, VoteSet

__all__ = ["QASystem"]


class QASystem:
    """A knowledge-graph Q&A system with voting-based optimization.

    Parameters
    ----------
    kg:
        The entity knowledge graph (e.g. from
        :func:`repro.qa.kg_builder.build_knowledge_graph`).
    vocabulary:
        Entity extractor used to link questions/documents to the graph.
    params:
        The :class:`~repro.serving.params.SimilarityParams` bundle
        (``k``, ``max_length``, ``restart_prob``).
    use_engine:
        Serve through the incremental :class:`SimilarityEngine`
        (default).  ``False`` restores the historical rebuild-per-call
        path — scores are bitwise identical either way; the flag exists
        for benchmarking and as an escape hatch.
    engine_cache_size:
        Bound on the engine's per-query score LRU.
    k, max_length, restart_prob:
        Removed; passing any of them raises ``TypeError`` with a
        migration hint (use ``params`` instead).
    """

    def __init__(
        self,
        kg: WeightedDiGraph,
        vocabulary: EntityVocabulary,
        *,
        params: "SimilarityParams | None" = None,
        use_engine: bool = True,
        engine_cache_size: int = DEFAULT_CACHE_SIZE,
        k: "int | None" = None,
        max_length: "int | None" = None,
        restart_prob: "float | None" = None,
    ) -> None:
        self._params = resolve_similarity_params(
            params, k=k, max_length=max_length, restart_prob=restart_prob
        )
        self._aug = AugmentedGraph(kg)
        self._vocabulary = vocabulary
        self._engine: "SimilarityEngine | None" = (
            SimilarityEngine(
                self._aug, params=self._params, cache_size=engine_cache_size
            )
            if use_engine
            else None
        )
        self._shown: dict[str, tuple[str, ...]] = {}
        self._votes = VoteSet()
        # itertools.count, not an int += 1: allocation is a single
        # C-level next() call, so concurrent asks can never mint the
        # same question id (the int read-modify-write could interleave).
        self._question_ids = itertools.count()
        registry = get_registry()
        self._m_asks = registry.counter("qa_asks_total")
        self._m_votes = registry.counter("qa_votes_total")
        self._h_ask = registry.histogram("qa_ask_seconds")

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    @property
    def params(self) -> SimilarityParams:
        """The similarity parameters used for serving and optimization."""
        return self._params

    @params.setter
    def params(self, value: SimilarityParams) -> None:
        if not isinstance(value, SimilarityParams):
            raise TypeError(f"params must be SimilarityParams, got {value!r}")
        self._params = value
        if self._engine is not None:
            self._engine.params = value

    @property
    def k(self) -> int:
        """Answer-list length (``params.k``)."""
        return self._params.k

    @k.setter
    def k(self, value: int) -> None:
        self.params = self._params.replace(k=value)

    @property
    def max_length(self) -> int:
        """Walk pruning threshold ``L`` (``params.max_length``)."""
        return self._params.max_length

    @max_length.setter
    def max_length(self, value: int) -> None:
        self.params = self._params.replace(max_length=value)

    @property
    def restart_prob(self) -> float:
        """Restart probability ``c`` (``params.restart_prob``)."""
        return self._params.restart_prob

    @restart_prob.setter
    def restart_prob(self, value: float) -> None:
        self.params = self._params.replace(restart_prob=value)

    # ------------------------------------------------------------------
    # serving internals
    # ------------------------------------------------------------------
    @property
    def engine(self) -> "SimilarityEngine | None":
        """The serving engine (``None`` when ``use_engine=False``)."""
        return self._engine

    def serving_stats(self) -> "EngineStats | None":
        """Engine observability snapshot, or ``None`` without an engine."""
        return self._engine.stats() if self._engine is not None else None

    # ------------------------------------------------------------------
    # corpus attachment
    # ------------------------------------------------------------------
    def add_document(self, doc_id: str, text: str) -> bool:
        """Attach a HELP document as an answer node.

        Returns ``False`` (and attaches nothing) when the document
        mentions no known entity — it could never be reached by a
        random walk anyway.
        """
        counts = self._vocabulary.extract(text)
        counts = {e: c for e, c in counts.items() if self._aug.is_entity(e)}
        if not counts:
            return False
        self._aug.add_answer(doc_id, counts)
        return True

    def add_documents(self, documents: Mapping[str, str]) -> list[str]:
        """Attach many documents; returns the ids actually attached."""
        attached = []
        for doc_id, text in documents.items():
            if self.add_document(doc_id, text):
                attached.append(doc_id)
        return attached

    # ------------------------------------------------------------------
    # the ask / vote loop
    # ------------------------------------------------------------------
    def _attach_question(self, question: str, question_id: str) -> None:
        """Link a question to the graph as a query node (re-attach ok)."""
        counts = self._vocabulary.extract(question)
        counts = {e: c for e, c in counts.items() if self._aug.is_entity(e)}
        if not counts:
            raise CorpusError(
                f"question {question!r} mentions no entity known to the graph"
            )
        if question_id in self._aug.query_nodes:
            self._aug.remove_query(question_id)
        self._aug.add_query(question_id, counts)

    def _next_question_id(self) -> str:
        return f"__q{next(self._question_ids)}"

    def _record_shown(
        self, question_id: str, ranked: Sequence[tuple]
    ) -> list[tuple[str, float]]:
        self._shown[question_id] = tuple(answer for answer, _ in ranked)
        return [(str(answer), score) for answer, score in ranked]

    @serve_path
    def ask(self, question: str, *, question_id: "str | None" = None) -> list[tuple[str, float]]:
        """Answer a question with a ranked top-k document list.

        The question is linked to the graph through its extracted
        entities and the shown list is remembered so a later
        :meth:`vote` can reference it.

        Raises
        ------
        CorpusError
            When the question mentions no entity known to the graph.
        """
        if question_id is None:
            question_id = self._next_question_id()
        started = perf_counter()  # span.duration is 0 when sampled out
        with trace_span("qa.ask") as span:
            self._attach_question(question, question_id)
            ranked = rank_answers(
                self._aug,
                question_id,
                params=self._params,
                engine=self._engine,
            )
            if span.recording:
                span.set_attrs(
                    question_id=question_id, num_answers=len(ranked)
                )
        self._m_asks.inc()
        elapsed = perf_counter() - started
        self._h_ask.observe(elapsed)
        rec = active_recorder()
        if rec is not None:
            rec.record_timed(
                "qa.ask",
                elapsed,
                question_id=question_id,
                num_answers=len(ranked),
            )
        return self._record_shown(question_id, ranked)

    @serve_path
    def ask_many(
        self,
        questions: Mapping[str, str],
        *,
        skip_unlinkable: bool = False,
    ) -> dict[str, list[tuple[str, float]]]:
        """Answer a batch of questions with one stacked propagation.

        Parameters
        ----------
        questions:
            ``question_id -> question text``.  Each question is attached
            exactly as :meth:`ask` would, but all of them are scored
            together through the engine's batched path (``L``
            sparse-dense products total instead of ``L`` per question).
        skip_unlinkable:
            Silently drop questions that mention no known entity instead
            of raising :class:`~repro.errors.CorpusError`.

        Returns
        -------
        dict
            ``question_id -> ranked (doc, score) list``, in input order;
            shown lists are recorded for :meth:`vote` like ``ask``'s.
        """
        started = perf_counter()
        with trace_span("qa.ask_many") as span:
            attached: list[str] = []
            for question_id, text in questions.items():
                try:
                    self._attach_question(text, question_id)
                except CorpusError:
                    if skip_unlinkable:
                        continue
                    raise
                attached.append(question_id)
            if span.recording:
                span.set_attrs(
                    num_questions=len(questions), num_attached=len(attached)
                )
            if not attached:
                return {}
            if self._engine is not None:
                all_scores = self._engine.score_batch(
                    attached, params=self._params
                )
                results: dict[str, list[tuple[str, float]]] = {}
                for question_id in attached:
                    ordered = sorted(
                        all_scores[question_id].items(),
                        key=lambda item: (-item[1], repr(item[0])),
                    )[: self._params.k]
                    results[question_id] = self._record_shown(
                        question_id, ordered
                    )
            else:
                results = {
                    question_id: self._record_shown(
                        question_id,
                        rank_answers(
                            self._aug, question_id, params=self._params
                        ),
                    )
                    for question_id in attached
                }
        self._m_asks.inc(len(attached))
        elapsed = perf_counter() - started
        self._h_ask.observe(elapsed)
        rec = active_recorder()
        if rec is not None:
            rec.record_timed(
                "qa.ask_many",
                elapsed,
                num_questions=len(questions),
                num_attached=len(attached),
            )
        return results

    @mutator
    def vote(self, question_id: str, best_doc: str) -> Vote:
        """Record the user's vote for ``question_id``'s best document.

        The vote is positive when ``best_doc`` was already on top of the
        shown list, negative otherwise (Definition 2).
        """
        shown = self._shown.get(question_id)
        if shown is None:
            raise VoteError(
                f"no answer list was shown for question {question_id!r}"
            )
        if best_doc not in shown:
            raise VoteError(
                f"{best_doc!r} was not among the answers shown for "
                f"{question_id!r}"
            )
        vote = Vote(query=question_id, ranked_answers=shown, best_answer=best_doc)
        self._votes.add(vote)
        self._m_votes.inc()
        rec = active_recorder()
        if rec is not None:
            rec.record(
                "qa.vote",
                question_id=question_id,
                positive=bool(shown and shown[0] == best_doc),
                pending=len(self._votes),
            )
        return vote

    @property
    def pending_votes(self) -> VoteSet:
        """Votes collected since the last :meth:`optimize`."""
        return self._votes

    # ------------------------------------------------------------------
    # optimization
    # ------------------------------------------------------------------
    @mutator
    def optimize(
        self,
        *,
        strategy: str = "multi",
        clear_votes: bool = True,
        **options,
    ) -> OptimizeReport:
        """Optimize the graph against the pending votes.

        Parameters
        ----------
        strategy:
            ``"multi"`` (Section V), ``"single"`` (Algorithm 1), or
            ``"split-merge"`` (Section VI).
        clear_votes:
            Drop the pending votes after applying them (they are spent).
        options:
            Forwarded to the chosen driver (``lambda1``, ``sigmoid_w``,
            ``solver_method``, ``num_workers``, ...).  Similarity
            parameters default to this system's ``params``; override
            with ``params=SimilarityParams(...)`` (the bare
            ``max_length``/``restart_prob`` keywords are removed and
            raise ``TypeError``).

        Returns
        -------
        OptimizeReport
            The strategy's report; all three share the
            :class:`~repro.optimize.report.OptimizeReport` contract
            (``elapsed``, ``solve_time``, ``changed_edges``,
            ``summary()``).
        """
        if not len(self._votes):
            raise VoteError("no pending votes to optimize against")
        num_votes = len(self._votes)
        started = perf_counter()
        options["params"] = resolve_similarity_params(
            options.pop("params", None),
            max_length=options.pop("max_length", None),
            restart_prob=options.pop("restart_prob", None),
            default=self._params,
        )
        with trace_span(
            "qa.optimize", strategy=strategy, num_votes=len(self._votes)
        ) as span:
            if strategy == "multi":
                _, report = solve_multi_vote(
                    self._aug, self._votes, in_place=True, **options
                )
            elif strategy == "single":
                _, report = solve_single_votes(
                    self._aug, self._votes, in_place=True, **options
                )
            elif strategy == "split-merge":
                _, report = solve_split_merge(
                    self._aug, self._votes, in_place=True, **options
                )
            else:
                raise ValueError(
                    f"unknown strategy {strategy!r}; expected 'multi', "
                    f"'single', or 'split-merge'"
                )
            span.set_attrs(
                changed_edges=report.num_changed_edges,
                elapsed=round(report.elapsed, 6),
            )
            if self._engine is not None:
                # Fold the solve's weight patches into one
                # delta-revalidation pass now, off the serve path — the
                # first post-optimize ask hits a warm cache instead of
                # repropagating.
                self._engine.revalidate()
        rec = active_recorder()
        if rec is not None:
            rec.record_timed(
                "qa.optimize",
                perf_counter() - started,
                strategy=strategy,
                num_votes=num_votes,
                changed_edges=report.num_changed_edges,
            )
        if clear_votes:
            self._votes = VoteSet()
        return report

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def persist(self, path: str) -> None:
        """Atomically write the augmented graph (weights + roles) to disk.

        The write goes through
        :func:`~repro.graph.persistence.save_augmented_graph` (temp
        file + rename), so a crash mid-save never leaves a torn file.
        Pair with :meth:`restore` to survive restarts; for continuous
        crash-safety of the vote stream itself, drive optimization
        through a durable
        :class:`~repro.optimize.online.OnlineOptimizer` instead.
        """
        from repro.graph.persistence import save_augmented_graph

        save_augmented_graph(self._aug, path)

    @mutator
    def restore(self, path: str) -> None:
        """Replace the live graph with one previously :meth:`persist`\\ ed.

        The serving engine is rebuilt over the restored graph, so its
        matrix epoch starts fresh and the score LRU can never serve
        vectors computed against the pre-restore weights.  Per-session
        state tied to the old graph — shown answer lists and pending
        votes — is cleared; in a durable deployment pending votes live
        in the write-ahead log, not here.
        """
        from repro.graph.persistence import load_augmented_graph

        aug = load_augmented_graph(path)
        old_engine = self._engine
        self._aug = aug
        if old_engine is not None:
            old_engine.close()
            self._engine = SimilarityEngine(
                aug, params=self._params, cache_size=old_engine.cache_size
            )
        self._shown.clear()
        self._votes = VoteSet()
        # Keep auto-generated question ids collision-free with any
        # __qN queries the restored graph carries, and monotonic past
        # everything this instance already minted.
        floor = next(self._question_ids)
        for node in aug.query_nodes:
            text = str(node)
            if text.startswith("__q") and text[3:].isdigit():
                floor = max(floor, int(text[3:]) + 1)
        self._question_ids = itertools.count(floor)

    # ------------------------------------------------------------------
    # evaluation & access
    # ------------------------------------------------------------------
    @property
    def augmented_graph(self) -> AugmentedGraph:
        """The live augmented graph (entities + questions + documents)."""
        return self._aug

    def evaluate(
        self,
        test_questions: Mapping[str, str],
        test_pairs: Mapping[str, str],
        *,
        k_values: Sequence[int] = (1, 3, 5, 10),
    ) -> EvaluationResult:
        """Evaluate ranking quality on held-out question–document pairs.

        Parameters
        ----------
        test_questions:
            ``question_id -> question text``; attached temporarily.
        test_pairs:
            ``question_id -> ground-truth best document id``.
        """
        attached: list[str] = []
        pairs: dict[str, str] = {}
        try:
            for question_id, text in test_questions.items():
                counts = self._vocabulary.extract(text)
                counts = {
                    e: c for e, c in counts.items() if self._aug.is_entity(e)
                }
                if not counts or question_id not in test_pairs:
                    continue
                if test_pairs[question_id] not in self._aug.answer_nodes:
                    continue
                self._aug.add_query(question_id, counts)
                attached.append(question_id)
                pairs[question_id] = test_pairs[question_id]
            if not pairs:
                raise EvaluationError(
                    "no test question could be linked to the graph"
                )
            return evaluate_test_set(
                self._aug,
                pairs,
                k_values=k_values,
                params=self._params,
                engine=self._engine,
            )
        finally:
            for question_id in attached:
                self._aug.remove_query(question_id)
