"""Building the knowledge graph from a corpus (Section III-A).

The paper initializes entity-relation weights with conditional
co-occurrence probabilities over the answer documents:

    w(v_i, v_j) = P(v_j | v_i) = #(v_i, v_j) / #(v_i)

where ``#(v_i)`` is the occurrence frequency of the entity and
``#(v_i, v_j)`` the co-occurrence frequency within documents.  Raw
conditional probabilities at a node can sum past one (an entity
co-occurring with many others), so the builder optionally rescales each
node's out-weights to a configurable total — keeping the *relative*
strengths, which is all the ranking uses, while making the graph a
valid sub-stochastic transition structure.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping

from repro.errors import CorpusError
from repro.graph.digraph import WeightedDiGraph
from repro.graph.normalize import normalize_out_weights
from repro.qa.entities import EntityVocabulary


def cooccurrence_counts(
    entity_counts: Iterable[Mapping[str, int]],
) -> tuple[Counter, Counter]:
    """Occurrence and pairwise co-occurrence counts over documents.

    Parameters
    ----------
    entity_counts:
        One ``{entity: count}`` mapping per document (the extractor's
        output).

    Returns
    -------
    (occurrences, cooccurrences):
        ``occurrences[v]`` sums the entity's counts over all documents;
        ``cooccurrences[(u, v)]`` counts, for each ordered pair of
        *distinct* entities sharing a document, ``min(#u, #v)`` in that
        document — a standard co-occurrence strength that is symmetric
        in the pair but becomes asymmetric after conditioning.
    """
    occurrences: Counter = Counter()
    cooccurrences: Counter = Counter()
    for counts in entity_counts:
        items = [(e, c) for e, c in counts.items() if c > 0]
        for entity, count in items:
            occurrences[entity] += count
        for i, (u, cu) in enumerate(items):
            for v, cv in items[i + 1 :]:
                strength = min(cu, cv)
                cooccurrences[(u, v)] += strength
                cooccurrences[(v, u)] += strength
    return occurrences, cooccurrences


def build_knowledge_graph(
    documents: Mapping[str, str],
    vocabulary: EntityVocabulary,
    *,
    min_cooccurrence: int = 1,
    normalize: bool = True,
    out_mass: float = 0.9,
) -> WeightedDiGraph:
    """Build the entity knowledge graph from HELP documents.

    Parameters
    ----------
    documents:
        ``doc_id -> text``.
    vocabulary:
        The entity extractor.
    min_cooccurrence:
        Drop edges whose co-occurrence count falls below this (noise
        pruning).
    normalize:
        Rescale every node's out-weights to sum to ``out_mass``.  When
        off, weights are the raw conditional probabilities of the paper
        (whose sums may exceed one).
    out_mass:
        Per-node out-weight total when normalizing; below 1 leaves
        walk-termination mass so augmented similarity series behave.

    Returns
    -------
    WeightedDiGraph
        Nodes are canonical entity names; an edge ``u -> v`` means the
        entities co-occur, weighted by (rescaled) ``P(v | u)``.
    """
    if min_cooccurrence < 1:
        raise CorpusError(f"min_cooccurrence must be ≥ 1, got {min_cooccurrence}")
    extracted = [vocabulary.extract(text) for text in documents.values()]
    occurrences, cooccurrences = cooccurrence_counts(extracted)

    graph = WeightedDiGraph(strict=False)
    for entity in occurrences:
        graph.add_node(entity)
    for (head, tail), count in cooccurrences.items():
        if count < min_cooccurrence:
            continue
        weight = count / occurrences[head]
        if weight > 0:
            graph.add_edge(head, tail, weight)
    if normalize:
        normalize_out_weights(graph, target=out_mass)
    return graph
