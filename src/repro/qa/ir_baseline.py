"""The information-retrieval baseline of Table V.

Section VII-B: "The IR approach evaluates the entities in the questions
and documents and returns top-k answers based on their coincidence
rates."  Concretely we score each document by the Jaccard coincidence of
its entity set with the question's entity set (a count-overlap variant
is provided for ablation), with deterministic tie-breaking so runs are
repeatable.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import EvaluationError
from repro.qa.entities import EntityVocabulary


def ir_scores(
    question: str,
    documents: Mapping[str, str],
    vocabulary: EntityVocabulary,
    *,
    mode: str = "jaccard",
) -> dict[str, float]:
    """Coincidence-rate scores of every document for one question.

    Parameters
    ----------
    question, documents:
        Raw texts; entities are extracted with ``vocabulary``.
    mode:
        ``"jaccard"`` — ``|Q ∩ D| / |Q ∪ D|`` over entity *sets*;
        ``"overlap"`` — the raw shared-entity count.
    """
    if mode not in {"jaccard", "overlap"}:
        raise EvaluationError(f"unknown IR mode {mode!r}")
    question_entities = set(vocabulary.extract(question))
    scores: dict[str, float] = {}
    for doc_id, text in documents.items():
        doc_entities = set(vocabulary.extract(text))
        shared = question_entities & doc_entities
        if mode == "overlap":
            scores[doc_id] = float(len(shared))
        else:
            union = question_entities | doc_entities
            scores[doc_id] = len(shared) / len(union) if union else 0.0
    return scores


def ir_rank(
    question: str,
    documents: Mapping[str, str],
    vocabulary: EntityVocabulary,
    *,
    k: "int | None" = None,
    mode: str = "jaccard",
) -> list[tuple[str, float]]:
    """Ranked ``(doc_id, score)`` list for one question (top-k)."""
    scores = ir_scores(question, documents, vocabulary, mode=mode)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k] if k is not None else ranked
