"""Question-answering application substrate.

The paper's effectiveness study runs on a Q&A system built from Taobao
customer-service question/HELP-document pairs (Section VII-A1).  That
corpus is proprietary, so this subpackage provides the full equivalent
pipeline on synthetic data (see DESIGN.md's substitution table):

- :mod:`repro.qa.corpus` — a deterministic topical help-desk corpus
  generator (documents, questions, ground-truth pairs);
- :mod:`repro.qa.entities` — the entity extractor (vocabulary-driven,
  standing in for the sequence-labelling extractor of [5]);
- :mod:`repro.qa.kg_builder` — corpus → knowledge graph with
  co-occurrence conditional-probability weights (Section III-A);
- :mod:`repro.qa.system` — the interactive ask/vote/optimize loop;
- :mod:`repro.qa.ir_baseline` — the IR coincidence-rate baseline of
  Table V.
"""

from repro.qa.corpus import Document, HelpdeskCorpus, QAPair, generate_helpdesk_corpus
from repro.qa.entities import EntityVocabulary, tokenize
from repro.qa.kg_builder import build_knowledge_graph, cooccurrence_counts
from repro.qa.system import QASystem
from repro.qa.ir_baseline import ir_rank, ir_scores

__all__ = [
    "Document",
    "QAPair",
    "HelpdeskCorpus",
    "generate_helpdesk_corpus",
    "EntityVocabulary",
    "tokenize",
    "build_knowledge_graph",
    "cooccurrence_counts",
    "QASystem",
    "ir_rank",
    "ir_scores",
]
