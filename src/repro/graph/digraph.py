"""Weighted directed graph with probability-style edge weights.

This is the base structure for every graph in the library: knowledge
graphs, augmented query/answer graphs, and the synthetic KONECT-like
graphs used in the efficiency experiments.  Nodes are arbitrary hashable
labels (entity strings, integers, ...).  Edge weights model transition
probabilities, so each weight lies in ``(0, 1]`` and the out-weights of a
node should sum to at most 1 (a deficit is allowed — it is the
probability that a random walk "dies", which is how answer nodes act as
absorbing sinks).

The structure is a dict-of-dicts adjacency with a mirrored predecessor
map, plus an optional cached index/CSR view for the matrix-based
similarity code (:mod:`repro.similarity.ppr`).

Mutations are observable: every change bumps a monotonically increasing
:attr:`~WeightedDiGraph.version` (split into
:attr:`~WeightedDiGraph.structure_version` for sparsity-pattern changes
and :attr:`~WeightedDiGraph.weight_version` for weight-only updates) and
is broadcast to registered mutation listeners.  The versioned serving
layer (:mod:`repro.serving`) uses these hooks to keep a cached sparse
adjacency matrix incrementally up to date instead of rebuilding it from
the dicts on every similarity evaluation.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Hashable, Iterable, Iterator
from dataclasses import dataclass
from typing import Any, TypeAlias

import numpy as np
from scipy import sparse

from repro.errors import (
    EdgeNotFoundError,
    InvalidWeightError,
    NodeNotFoundError,
)

Node = Hashable

#: A mutation listener: ``callback(event, *args)`` — see
#: :meth:`WeightedDiGraph.add_listener` for the event vocabulary.
GraphListener: TypeAlias = Callable[..., Any]

#: Tolerance allowed on the "out-weights sum to at most one" invariant.
STOCHASTIC_TOL = 1e-9


@dataclass(frozen=True)
class Edge:
    """A directed edge ``head -> tail`` with its current weight.

    ``Edge`` is a value snapshot: mutating the graph after obtaining an
    ``Edge`` does not update it.
    """

    head: Node
    tail: Node
    weight: float

    @property
    def key(self) -> tuple[Node, Node]:
        """The ``(head, tail)`` pair identifying this edge in the graph."""
        return (self.head, self.tail)


class WeightedDiGraph:
    """A mutable weighted directed graph.

    Parameters
    ----------
    strict:
        When true (the default), mutations enforce the probabilistic
        invariants: weights in ``(0, 1]`` and per-node out-weight sums at
        most ``1 + STOCHASTIC_TOL``.  Graph generators that build weights
        before normalizing can disable strict mode and call
        :func:`repro.graph.normalize.normalize_out_weights` afterwards.

    Notes
    -----
    Iteration order over nodes and edges is insertion order (Python dict
    semantics), which keeps every downstream computation deterministic
    for a fixed construction sequence.
    """

    def __init__(self, *, strict: bool = True) -> None:
        self._succ: dict[Node, dict[Node, float]] = {}
        self._pred: dict[Node, dict[Node, float]] = {}
        self._num_edges = 0
        self.strict = strict
        self._index_cache: dict[Node, int] | None = None
        self._structure_version = 0
        self._weight_version = 0
        self._listeners: list[GraphListener] = []

    # ------------------------------------------------------------------
    # mutation tracking
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation (structure or weight)."""
        return self._structure_version + self._weight_version

    @property
    def structure_version(self) -> int:
        """Counter bumped by node/edge insertion and removal."""
        return self._structure_version

    @property
    def weight_version(self) -> int:
        """Counter bumped by weight updates on existing edges."""
        return self._weight_version

    def add_listener(self, callback: GraphListener) -> None:
        """Register a mutation listener.

        ``callback(event, *args)`` is invoked synchronously after each
        mutation with one of::

            ("add_node", node)
            ("add_edge", head, tail, weight)      # new sparsity entry
            ("update_weight", head, tail, weight) # existing edge re-weighted
            ("remove_edge", head, tail)
            ("remove_node", node)

        Listeners must not mutate the graph from inside the callback.
        ``copy()``/``subgraph()`` clones start with no listeners.
        """
        if callback not in self._listeners:
            self._listeners.append(callback)

    def remove_listener(self, callback: GraphListener) -> None:
        """Unregister a mutation listener; unknown callbacks are ignored."""
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def _emit(self, event: str, *args: Any) -> None:
        for callback in self._listeners:
            callback(event, *args)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node, float]],
        *,
        strict: bool = True,
    ) -> "WeightedDiGraph":
        """Build a graph from ``(head, tail, weight)`` triples."""
        graph = cls(strict=strict)
        for head, tail, weight in edges:
            graph.add_edge(head, tail, weight)
        return graph

    def add_node(self, node: Node) -> None:
        """Add an isolated node; adding an existing node is a no-op."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            self._invalidate_index()
            self._structure_version += 1
            if self._listeners:
                self._emit("add_node", node)

    def add_edge(self, head: Node, tail: Node, weight: float) -> None:
        """Add edge ``head -> tail``, creating missing endpoints.

        Overwrites the weight if the edge already exists.  Self-loops are
        permitted (a walk may revisit a node), though none of the paper's
        constructions produce them.
        """
        self._check_weight(head, tail, weight)
        self.add_node(head)
        self.add_node(tail)
        if self.strict:
            current = self._succ[head].get(tail, 0.0)
            out_sum = self._out_sum(head) - current + weight
            if out_sum > 1.0 + STOCHASTIC_TOL:
                raise InvalidWeightError(
                    f"adding edge {head!r}->{tail!r} with weight {weight} would "
                    f"raise the out-weight sum of {head!r} to {out_sum:.6f} > 1"
                )
        is_new = tail not in self._succ[head]
        if is_new:
            self._num_edges += 1
        self._succ[head][tail] = float(weight)
        self._pred[tail][head] = float(weight)
        if is_new:
            self._structure_version += 1
        else:
            self._weight_version += 1
        if self._listeners:
            event = "add_edge" if is_new else "update_weight"
            self._emit(event, head, tail, float(weight))

    def remove_edge(self, head: Node, tail: Node) -> None:
        """Remove edge ``head -> tail``; endpoints stay in the graph."""
        if not self.has_edge(head, tail):
            raise EdgeNotFoundError(head, tail)
        del self._succ[head][tail]
        del self._pred[tail][head]
        self._num_edges -= 1
        self._structure_version += 1
        if self._listeners:
            self._emit("remove_edge", head, tail)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` along with every incident edge."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for tail in list(self._succ[node]):
            self.remove_edge(node, tail)
        for head in list(self._pred[node]):
            self.remove_edge(head, node)
        del self._succ[node]
        del self._pred[node]
        self._invalidate_index()
        self._structure_version += 1
        if self._listeners:
            self._emit("remove_node", node)

    def set_weight(self, head: Node, tail: Node, weight: float) -> None:
        """Update the weight of an existing edge."""
        if not self.has_edge(head, tail):
            raise EdgeNotFoundError(head, tail)
        self._check_weight(head, tail, weight)
        if self.strict:
            out_sum = self._out_sum(head) - self._succ[head][tail] + weight
            if out_sum > 1.0 + STOCHASTIC_TOL:
                raise InvalidWeightError(
                    f"setting edge {head!r}->{tail!r} to {weight} would raise "
                    f"the out-weight sum of {head!r} to {out_sum:.6f} > 1"
                )
        self._succ[head][tail] = float(weight)
        self._pred[tail][head] = float(weight)
        self._weight_version += 1
        if self._listeners:
            self._emit("update_weight", head, tail, float(weight))

    def _check_weight(self, head: Node, tail: Node, weight: float) -> None:
        if not math.isfinite(weight) or weight <= 0.0:
            raise InvalidWeightError(
                f"edge {head!r}->{tail!r}: weight must be finite and > 0, got {weight!r}"
            )
        if self.strict and weight > 1.0 + STOCHASTIC_TOL:
            raise InvalidWeightError(
                f"edge {head!r}->{tail!r}: weight must be <= 1, got {weight!r}"
            )

    def _out_sum(self, node: Node) -> float:
        return sum(self._succ[node].values())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._succ

    def has_edge(self, head: Node, tail: Node) -> bool:
        """Whether edge ``head -> tail`` is in the graph."""
        return head in self._succ and tail in self._succ[head]

    def weight(self, head: Node, tail: Node) -> float:
        """The weight of edge ``head -> tail``; raises if absent."""
        try:
            return self._succ[head][tail]
        except KeyError:
            raise EdgeNotFoundError(head, tail) from None

    def weight_or_zero(self, head: Node, tail: Node) -> float:
        """The weight of ``head -> tail``, or 0.0 when the edge is absent."""
        return self._succ.get(head, {}).get(tail, 0.0)

    def successors(self, node: Node) -> dict[Node, float]:
        """Mapping of out-neighbours to weights (a defensive copy)."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return dict(self._succ[node])

    def predecessors(self, node: Node) -> dict[Node, float]:
        """Mapping of in-neighbours to weights (a defensive copy)."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return dict(self._pred[node])

    def out_degree(self, node: Node) -> int:
        """Number of out-edges of ``node``."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Number of in-edges of ``node``."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return len(self._pred[node])

    def out_weight_sum(self, node: Node) -> float:
        """Sum of the out-edge weights of ``node`` (walk survival mass)."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return self._out_sum(node)

    @property
    def num_nodes(self) -> int:
        """``|V|`` — the number of nodes."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """``|E|`` — the number of directed edges."""
        return self._num_edges

    def average_degree(self) -> float:
        """Average out-degree ``|E| / |V|`` (Table II's "Average Degree")."""
        if not self._succ:
            return 0.0
        return self._num_edges / len(self._succ)

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as :class:`Edge` snapshots."""
        for head, nbrs in self._succ.items():
            for tail, weight in nbrs.items():
                yield Edge(head, tail, weight)

    def edge_keys(self) -> Iterator[tuple[Node, Node]]:
        """Iterate over ``(head, tail)`` pairs without building Edge objects."""
        for head, nbrs in self._succ.items():
            for tail in nbrs:
                yield (head, tail)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def copy(self) -> "WeightedDiGraph":
        """Deep copy of the structure and weights (node labels shared)."""
        clone = WeightedDiGraph(strict=self.strict)
        for node in self._succ:
            clone.add_node(node)
        for head, nbrs in self._succ.items():
            for tail, weight in nbrs.items():
                clone._succ[head][tail] = weight
                clone._pred[tail][head] = weight
        clone._num_edges = self._num_edges
        return clone

    def node_index(self) -> dict[Node, int]:
        """Stable node -> contiguous integer index mapping (cached).

        The cache is invalidated by node insertion/removal but *not* by
        weight updates, so matrix code can be re-run cheaply while the
        optimizer adjusts weights.
        """
        if self._index_cache is None:
            self._index_cache = {node: i for i, node in enumerate(self._succ)}
        return self._index_cache

    def _invalidate_index(self) -> None:
        self._index_cache = None

    def adjacency_matrix(self) -> sparse.csr_matrix:
        """Column-stochastic-style sparse matrix ``M`` with ``M[i, j] = w(v_j, v_i)``.

        This is the matrix of the PPR equation (1) in the paper:
        ``pi = (1 - c) * M @ pi + c * u``.  Column ``j`` holds the
        out-weights of node ``j``, so ``M @ pi`` pushes probability mass
        along edges.
        """
        index = self.node_index()
        n = len(index)
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for head, nbrs in self._succ.items():
            j = index[head]
            for tail, weight in nbrs.items():
                rows.append(index[tail])
                cols.append(j)
                data.append(weight)
        return sparse.csr_matrix(
            (np.asarray(data), (np.asarray(rows), np.asarray(cols))),
            shape=(n, n),
        )

    def subgraph(self, nodes: Iterable[Node]) -> "WeightedDiGraph":
        """Induced subgraph on ``nodes`` (edges with both endpoints kept)."""
        keep = set(nodes)
        missing = [n for n in keep if n not in self._succ]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = WeightedDiGraph(strict=self.strict)
        for node in self._succ:
            if node in keep:
                sub.add_node(node)
        for head, nbrs in self._succ.items():
            if head not in keep:
                continue
            for tail, weight in nbrs.items():
                if tail in keep:
                    sub._succ[head][tail] = weight
                    sub._pred[tail][head] = weight
                    sub._num_edges += 1
        return sub

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` with ``weight`` attributes."""
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(self._succ)
        nx_graph.add_weighted_edges_from(
            (head, tail, weight)
            for head, nbrs in self._succ.items()
            for tail, weight in nbrs.items()
        )
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph, *, strict: bool = True) -> "WeightedDiGraph":
        """Import a :class:`networkx.DiGraph`; missing weights default to 1."""
        graph = cls(strict=strict)
        for node in nx_graph.nodes:
            graph.add_node(node)
        for head, tail, data in nx_graph.edges(data=True):
            graph.add_edge(head, tail, float(data.get("weight", 1.0)))
        return graph

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<WeightedDiGraph |V|={self.num_nodes} |E|={self.num_edges} "
            f"strict={self.strict}>"
        )
