"""Edge-weight normalization (the ``NormalizeEdges`` step of Algorithm 1).

After the SGP solver adjusts a subset of edge weights, the out-weights
of the touched nodes no longer sum to their original probability mass.
Algorithm 1 (line 16) re-normalizes so the graph remains a valid
transition structure.  Rescaling a node's out-weights by a common factor
preserves the *relative* weights the solver chose — which is what
determines answer rankings — while restoring stochasticity.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro.devtools.contracts import check_row_stochastic
from repro.errors import NodeNotFoundError
from repro.graph.digraph import Node, WeightedDiGraph

#: Predicate selecting which out-edges participate in a normalization.
EdgeFilter = Callable[[Node, Node], bool]


def normalize_out_weights(
    graph: WeightedDiGraph,
    *,
    nodes: "Iterable[Node] | None" = None,
    target: float = 1.0,
    edge_filter: "EdgeFilter | None" = None,
) -> None:
    """Rescale out-weights in place so each node's sum equals ``target``.

    Parameters
    ----------
    graph:
        Graph to mutate.
    nodes:
        Nodes to normalize; all nodes by default.  Nodes without
        out-edges (after filtering) are skipped.
    target:
        Desired out-weight sum per node.
    edge_filter:
        Optional predicate ``(head, tail) -> bool`` selecting which
        out-edges participate.  Used by the optimizer to normalize a
        node's knowledge-graph edges while leaving its fixed answer
        links untouched.
    """
    if target <= 0:
        raise ValueError(f"target must be positive, got {target}")
    node_list = list(nodes) if nodes is not None else list(graph.nodes())
    normalized: list[Node] = []
    for node in node_list:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
        succ = graph.successors(node)
        if edge_filter is not None:
            succ = {t: w for t, w in succ.items() if edge_filter(node, t)}
        if not succ:
            continue
        total = sum(succ.values())
        if total <= 0:
            continue
        scale = target / total
        for tail, weight in succ.items():
            graph.set_weight(node, tail, weight * scale)
        normalized.append(node)
    # Contract seam (Eq. 7-9): every normalized node's filtered out-mass
    # now equals the requested target.  No-op unless REPRO_CONTRACTS is on.
    check_row_stochastic(
        graph,
        nodes=normalized,
        expected={node: target for node in normalized},
        edge_filter=edge_filter,
        seam="graph.normalize_out_weights",
    )


def normalize_edges(
    graph: WeightedDiGraph,
    *,
    nodes: "Iterable[Node] | None" = None,
    reference_sums: "Mapping[Node, float] | None" = None,
    edge_filter: "EdgeFilter | None" = None,
) -> None:
    """Restore per-node out-weight sums to recorded reference values.

    This is the exact ``NormalizeEdges`` semantics the optimizer needs:
    before solving, it records each touched node's out-weight sum; after
    applying the solver's weights, it calls this function so every node
    ends up with the same total mass it started with (the solver is only
    allowed to redistribute mass, not create it).

    Parameters
    ----------
    reference_sums:
        ``node -> target sum``.  Nodes missing from the mapping are
        normalized to 1.0.  When ``None``, every selected node is
        normalized to 1.0.
    nodes, edge_filter:
        As in :func:`normalize_out_weights`.
    """
    node_list = list(nodes) if nodes is not None else list(graph.nodes())
    sums = reference_sums or {}
    for node in node_list:
        target = float(sums.get(node, 1.0))
        normalize_out_weights(
            graph, nodes=[node], target=target, edge_filter=edge_filter
        )


def out_weight_sums(
    graph: WeightedDiGraph,
    nodes: "Iterable[Node] | None" = None,
    *,
    edge_filter: "EdgeFilter | None" = None,
) -> dict[Node, float]:
    """Snapshot per-node out-weight sums (optionally over filtered edges).

    The optimizer takes this snapshot before solving and feeds it to
    :func:`normalize_edges` afterwards.
    """
    node_list = list(nodes) if nodes is not None else list(graph.nodes())
    sums: dict[Node, float] = {}
    for node in node_list:
        succ = graph.successors(node)
        if edge_filter is not None:
            succ = {t: w for t, w in succ.items() if edge_filter(node, t)}
        if succ:
            sums[node] = sum(succ.values())
    return sums
