"""The augmented knowledge graph: entities plus query and answer nodes.

Section III-A of the paper: the queries ``Q`` and answers ``A`` are
modelled as extra nodes linked to the knowledge graph ``G`` with
``Q ∩ V = ∅`` and ``A ∩ V = ∅``.  A query node has out-links to the
entity nodes mentioned by the query, weighted by occurrence frequency
(``w(v_q, v_i) = #(q, v_i) / Σ_j #(q, v_j)``); an answer node has
in-links *from* the entity nodes it mentions, normalized per answer in
the same way.  Answer nodes are absorbing sinks: a random walk that
reaches one terminates there, which is what makes
``S(v_q, v_a) = π_{v_q}(v_a)`` a useful relevance score.

:class:`AugmentedGraph` keeps one combined
:class:`~repro.graph.digraph.WeightedDiGraph` as the single source of
truth and tracks each node's role.  Only entity→entity edges (the
knowledge-graph edges proper) are subject to optimization; query links
and answer links are derived from text statistics and stay fixed.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import AugmentationError, NodeNotFoundError
from repro.graph.digraph import Edge, Node, WeightedDiGraph


class AugmentedGraph:
    """A knowledge graph augmented with query and answer nodes.

    Parameters
    ----------
    kg:
        The entity-level knowledge graph.  Its nodes become the *entity*
        nodes of the augmented graph; its weights are copied, so the
        caller's graph is never mutated.

    Notes
    -----
    The combined graph is built with ``strict=False`` because entity
    nodes carry both their (sub-stochastic) knowledge-graph out-weights
    and their answer links, and the paper's own construction (Fig. 1,
    ``w(Outlook, a3) = 1``) allows the total to exceed one.  Path-based
    similarity truncated at length ``L`` is always finite regardless.
    """

    def __init__(self, kg: WeightedDiGraph) -> None:
        self._graph = WeightedDiGraph(strict=False)
        self._entities: set[Node] = set()
        self._queries: set[Node] = set()
        self._answers: set[Node] = set()
        for node in kg.nodes():
            self._graph.add_node(node)
            self._entities.add(node)
        for edge in kg.edges():
            self._graph.add_edge(edge.head, edge.tail, edge.weight)

    # ------------------------------------------------------------------
    # roles
    # ------------------------------------------------------------------
    @property
    def entity_nodes(self) -> frozenset[Node]:
        """The entity (knowledge-graph) nodes."""
        return frozenset(self._entities)

    @property
    def query_nodes(self) -> frozenset[Node]:
        """The attached query nodes."""
        return frozenset(self._queries)

    @property
    def answer_nodes(self) -> frozenset[Node]:
        """The attached answer nodes."""
        return frozenset(self._answers)

    def is_entity(self, node: Node) -> bool:
        """Whether ``node`` is an entity node."""
        return node in self._entities

    def is_query(self, node: Node) -> bool:
        """Whether ``node`` is a query node."""
        return node in self._queries

    def is_answer(self, node: Node) -> bool:
        """Whether ``node`` is an answer node."""
        return node in self._answers

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def add_query(self, query_id: Node, entity_counts: Mapping[Node, float]) -> None:
        """Attach a query node linked to the entities it mentions.

        Parameters
        ----------
        query_id:
            Label for the new query node; must not collide with any
            existing node.
        entity_counts:
            ``entity -> occurrence count`` for the entities extracted
            from the query text.  Counts are normalized to weights
            ``#(q, v_i) / Σ_j #(q, v_j)`` per the paper; entities absent
            from the graph raise :class:`AugmentationError`.
        """
        weights = self._normalized_links(query_id, entity_counts)
        self._graph.add_node(query_id)
        self._queries.add(query_id)
        for entity, weight in weights.items():
            self._graph.add_edge(query_id, entity, weight)

    def add_answer(self, answer_id: Node, entity_counts: Mapping[Node, float]) -> None:
        """Attach an answer node with in-links from the entities it mentions.

        Answer links are normalized per answer (they sum to one over the
        answer's entities), mirroring the query-side construction.  The
        answer node has no out-edges: random walks are absorbed there.
        """
        weights = self._normalized_links(answer_id, entity_counts)
        self._graph.add_node(answer_id)
        self._answers.add(answer_id)
        for entity, weight in weights.items():
            self._graph.add_edge(entity, answer_id, weight)

    def _normalized_links(
        self, node_id: Node, entity_counts: Mapping[Node, float]
    ) -> dict[Node, float]:
        if self._graph.has_node(node_id):
            raise AugmentationError(f"node id {node_id!r} already exists in the graph")
        if not entity_counts:
            raise AugmentationError(
                f"cannot attach {node_id!r}: it mentions no known entities"
            )
        unknown = [e for e in entity_counts if e not in self._entities]
        if unknown:
            raise AugmentationError(
                f"cannot attach {node_id!r}: {unknown[:3]!r} are not entity nodes"
            )
        bad = {e: c for e, c in entity_counts.items() if not c > 0}
        if bad:
            raise AugmentationError(
                f"cannot attach {node_id!r}: non-positive counts {bad!r}"
            )
        total = float(sum(entity_counts.values()))
        return {entity: count / total for entity, count in entity_counts.items()}

    def remove_query(self, query_id: Node) -> None:
        """Detach a query node and its links."""
        if query_id not in self._queries:
            raise NodeNotFoundError(query_id)
        self._graph.remove_node(query_id)
        self._queries.discard(query_id)

    def remove_answer(self, answer_id: Node) -> None:
        """Detach an answer node and its links."""
        if answer_id not in self._answers:
            raise NodeNotFoundError(answer_id)
        self._graph.remove_node(answer_id)
        self._answers.discard(answer_id)

    # ------------------------------------------------------------------
    # combined-graph access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> WeightedDiGraph:
        """The live combined graph (entities + queries + answers).

        Mutating this object directly bypasses the role bookkeeping;
        prefer :meth:`set_kg_weight` for weight updates.  All mutations
        routed through this class emit the combined graph's listener
        events and bump its :attr:`version`, which is what lets
        :class:`~repro.serving.engine.SimilarityEngine` maintain its
        cached adjacency matrix incrementally.
        """
        return self._graph

    @property
    def version(self) -> int:
        """The combined graph's monotonically increasing mutation version.

        Convenience alias for ``self.graph.version``; any structural or
        weight change (query/answer attach, optimizer update) bumps it,
        so it can key caches of anything derived from the graph.
        """
        return self._graph.version

    def is_kg_edge(self, head: Node, tail: Node) -> bool:
        """Whether ``head -> tail`` is an optimizable entity→entity edge."""
        return (
            head in self._entities
            and tail in self._entities
            and self._graph.has_edge(head, tail)
        )

    def kg_edges(self) -> Iterator[Edge]:
        """Iterate over the entity→entity edges (the optimization variables)."""
        for edge in self._graph.edges():
            if edge.head in self._entities and edge.tail in self._entities:
                yield edge

    def kg_weight(self, head: Node, tail: Node) -> float:
        """Weight of an entity→entity edge."""
        if not self.is_kg_edge(head, tail):
            raise AugmentationError(f"{head!r} -> {tail!r} is not a knowledge-graph edge")
        return self._graph.weight(head, tail)

    def set_kg_weight(self, head: Node, tail: Node, weight: float) -> None:
        """Update the weight of an entity→entity edge.

        Query and answer link weights are text-derived constants and may
        not be modified through this method.
        """
        if not self.is_kg_edge(head, tail):
            raise AugmentationError(f"{head!r} -> {tail!r} is not a knowledge-graph edge")
        self._graph.set_weight(head, tail, weight)

    def kg_view(self) -> WeightedDiGraph:
        """A detached copy of the entity-level knowledge graph."""
        return self._graph.subgraph(self._entities)

    def query_links(self, query_id: Node) -> dict[Node, float]:
        """The entity link weights of a query node."""
        if query_id not in self._queries:
            raise NodeNotFoundError(query_id)
        return self._graph.successors(query_id)

    def answer_links(self, answer_id: Node) -> dict[Node, float]:
        """The entity link weights of an answer node (entity -> weight)."""
        if answer_id not in self._answers:
            raise NodeNotFoundError(answer_id)
        return self._graph.predecessors(answer_id)

    def copy(self) -> "AugmentedGraph":
        """Deep copy (graph weights and role sets)."""
        clone = AugmentedGraph.__new__(AugmentedGraph)
        clone._graph = self._graph.copy()
        clone._entities = set(self._entities)
        clone._queries = set(self._queries)
        clone._answers = set(self._answers)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AugmentedGraph entities={len(self._entities)} "
            f"queries={len(self._queries)} answers={len(self._answers)} "
            f"edges={self._graph.num_edges}>"
        )


def attach_queries_and_answers(
    kg: WeightedDiGraph,
    queries: Mapping[Node, Mapping[Node, float]],
    answers: Mapping[Node, Mapping[Node, float]],
    *,
    skip_unlinkable: bool = False,
) -> AugmentedGraph:
    """Build an :class:`AugmentedGraph` from entity-count mappings.

    Parameters
    ----------
    kg:
        The entity knowledge graph.
    queries, answers:
        ``node id -> {entity: count}`` mappings.
    skip_unlinkable:
        When true, queries/answers that mention no known entity are
        silently skipped instead of raising; useful when attaching a raw
        corpus where some documents fall outside the graph vocabulary.
    """
    aug = AugmentedGraph(kg)
    for query_id, counts in queries.items():
        known = {e: c for e, c in counts.items() if e in aug.entity_nodes}
        if not known and skip_unlinkable:
            continue
        aug.add_query(query_id, known if skip_unlinkable else counts)
    for answer_id, counts in answers.items():
        known = {e: c for e, c in counts.items() if e in aug.entity_nodes}
        if not known and skip_unlinkable:
            continue
        aug.add_answer(answer_id, known if skip_unlinkable else counts)
    return aug
