"""Knowledge-graph substrate.

The paper works on a weighted directed graph ``G = (V, E, W)`` whose edge
weights are transition probabilities, augmented with query nodes ``Q`` and
answer nodes ``A`` that are linked to — but disjoint from — the entity
nodes ``V`` (Section III-A).  This subpackage provides:

- :class:`~repro.graph.digraph.WeightedDiGraph` — the base structure;
- :class:`~repro.graph.augmented.AugmentedGraph` — G plus Q plus A;
- generators for random and dataset-statistics-matched graphs;
- KONECT/TSV/JSON I/O;
- the ``NormalizeEdges`` step of Algorithm 1.
"""

from repro.graph.digraph import Edge, WeightedDiGraph
from repro.graph.augmented import AugmentedGraph
from repro.graph.normalize import normalize_edges, normalize_out_weights
from repro.graph.generators import (
    helpdesk_graph,
    konect_like,
    random_digraph,
    KONECT_STATS,
)
from repro.graph.io import (
    load_edge_list,
    load_json_graph,
    save_edge_list,
    save_json_graph,
)
from repro.graph.persistence import load_augmented_graph, save_augmented_graph
from repro.graph.stats import GraphSummary, summarize

__all__ = [
    "Edge",
    "WeightedDiGraph",
    "AugmentedGraph",
    "normalize_edges",
    "normalize_out_weights",
    "random_digraph",
    "konect_like",
    "helpdesk_graph",
    "KONECT_STATS",
    "load_edge_list",
    "save_edge_list",
    "load_json_graph",
    "save_json_graph",
    "load_augmented_graph",
    "save_augmented_graph",
    "GraphSummary",
    "summarize",
]
