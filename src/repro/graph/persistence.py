"""Persistence for augmented graphs.

A deployed system must survive restarts with its *optimized* weights —
otherwise every vote-driven improvement evaporates.  Plain graphs
round-trip through :mod:`repro.graph.io`; an
:class:`~repro.graph.augmented.AugmentedGraph` additionally needs its
role bookkeeping (which nodes are queries/answers), which this module
serializes alongside the combined graph in a single JSON document.

Writes are **atomic**: the payload goes to a ``<name>.tmp`` sibling
first, is fsynced, and is then renamed over the target, so a crash
mid-save can never leave a half-written (and thus unloadable) graph
behind — a reader observes either the old file or the new one.  The
durability layer (:mod:`repro.persistence`) builds its snapshots on
this guarantee.

Versioning policy: :data:`FORMAT_VERSION` is bumped only on an
*incompatible* schema change.  Adding optional top-level keys (such as
the ``meta`` mapping snapshots use to record their last applied WAL
sequence) is additive: older readers ignore unknown keys and newer
readers treat them as optional, so the version stays put.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from pathlib import Path

from repro.errors import GraphError
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import WeightedDiGraph

#: Schema version written into every file; bump on incompatible change
#: only — additive optional keys (e.g. ``meta``) keep the version.
FORMAT_VERSION = 1


def write_json_atomic(path: "str | Path", payload: object) -> None:
    """Serialize ``payload`` to ``path`` with write-temp-then-rename.

    The temporary sibling is fsynced before the rename and the parent
    directory is fsynced after it, so the rename itself is durable: a
    crash at any point leaves either the previous file or the complete
    new one, never a torn mixture.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    fsync_directory(target.parent)


def fsync_directory(directory: "str | Path") -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _validate_link_roles(aug: AugmentedGraph) -> None:
    """Reject graphs whose link edges cannot round-trip through JSON.

    The augmented-graph API only ever creates query→entity and
    entity→answer links (``add_query``/``add_answer`` both validate
    their targets against the entity set), so any other role
    combination means the combined graph was mutated behind the role
    bookkeeping's back.  Saving such a graph would succeed while the
    load would fail much later with a confusing "no links" error; fail
    fast at save time instead, naming the offending edge.
    """
    queries = aug.query_nodes
    answers = aug.answer_nodes
    for edge in aug.graph.edges():
        head_is_query = edge.head in queries
        tail_is_answer = edge.tail in answers
        if head_is_query and tail_is_answer:
            raise GraphError(
                f"cannot save: edge {edge.head!r} -> {edge.tail!r} links a "
                f"query directly to an answer; the augmented-graph "
                f"construction only supports query->entity and "
                f"entity->answer links"
            )
        if edge.head in answers:
            raise GraphError(
                f"cannot save: edge {edge.head!r} -> {edge.tail!r} leaves an "
                f"answer node; answers are absorbing and have no out-links"
            )
        if edge.tail in queries:
            raise GraphError(
                f"cannot save: edge {edge.head!r} -> {edge.tail!r} enters a "
                f"query node; queries have out-links only"
            )


def save_augmented_graph(
    aug: AugmentedGraph,
    path: "str | Path",
    *,
    meta: "Mapping[str, object] | None" = None,
) -> None:
    """Write an augmented graph (weights + roles) to JSON, atomically.

    Weights round-trip exactly (JSON numbers are IEEE doubles), so a
    save/load cycle preserves every similarity score bit for bit.

    Parameters
    ----------
    aug:
        The graph to persist.  Its link edges are validated against the
        role sets first; a graph that could not be re-attached on load
        (e.g. a hand-crafted query→answer edge) raises
        :class:`~repro.errors.GraphError` *now* rather than producing a
        file that fails to load later.
    path:
        Target file.  Written via temp-file-and-rename, so concurrent
        readers and crashes see either the old or the new version.
    meta:
        Optional JSON-serializable mapping stored under the ``meta``
        key — e.g. the durability layer's last applied WAL sequence.
        Readers that predate the key ignore it.
    """
    _validate_link_roles(aug)
    graph = aug.graph
    payload: dict[str, object] = {
        "format": "repro-augmented-graph",
        "version": FORMAT_VERSION,
        "nodes": list(graph.nodes()),
        "edges": [[e.head, e.tail, e.weight] for e in graph.edges()],
        "queries": sorted(aug.query_nodes, key=repr),
        "answers": sorted(aug.answer_nodes, key=repr),
    }
    if meta is not None:
        payload["meta"] = dict(meta)
    write_json_atomic(path, payload)


def _read_payload(path: "str | Path") -> dict:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise GraphError(f"{path}: not valid JSON") from exc
    if not isinstance(payload, dict) or payload.get("format") != "repro-augmented-graph":
        raise GraphError(f"{path}: not a repro augmented-graph file")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise GraphError(
            f"{path}: unsupported format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return payload


def read_augmented_graph_meta(path: "str | Path") -> dict:
    """The ``meta`` mapping stored with a saved graph (``{}`` if none).

    Validates the file header exactly like :func:`load_augmented_graph`
    but skips graph reconstruction, so peeking at snapshot metadata
    (e.g. the last applied WAL sequence) stays cheap.
    """
    meta = _read_payload(path).get("meta", {})
    if not isinstance(meta, dict):
        raise GraphError(f"{path}: 'meta' must be a JSON object, got {meta!r}")
    return meta


def load_augmented_graph(path: "str | Path") -> AugmentedGraph:
    """Load an augmented graph previously written by :func:`save_augmented_graph`."""
    payload = _read_payload(path)

    queries = set(payload["queries"])
    answers = set(payload["answers"])
    special = queries | answers

    # Rebuild the entity knowledge graph first, then reattach roles.
    kg = WeightedDiGraph(strict=False)
    for node in payload["nodes"]:
        if node not in special:
            kg.add_node(node)
    link_edges = []
    for head, tail, weight in payload["edges"]:
        if head in special or tail in special:
            link_edges.append((head, tail, float(weight)))
        else:
            kg.add_edge(head, tail, float(weight))

    aug = AugmentedGraph(kg)
    query_links: dict = {q: {} for q in queries}
    answer_links: dict = {a: {} for a in answers}
    for head, tail, weight in link_edges:
        head_is_query = head in queries
        tail_is_answer = tail in answers
        # Route each link edge by its *full* role signature.  A naive
        # "head is a query wins" routing silently swallowed a
        # query→answer edge into query_links, leaving the answer with
        # no in-links and a much later, misleading "no links" error.
        if head_is_query and tail_is_answer:
            raise GraphError(
                f"{path}: link edge {head!r} -> {tail!r} connects a query "
                f"directly to an answer; this shape is not representable "
                f"by the augmented-graph construction (save would have "
                f"rejected it)"
            )
        if head in answers or tail in queries:
            raise GraphError(
                f"{path}: link edge {head!r} -> {tail!r} runs against the "
                f"role structure (answers absorb, queries only emit)"
            )
        if head_is_query:
            query_links[head][tail] = weight
        elif tail_is_answer:
            answer_links[tail][head] = weight
        else:
            raise GraphError(
                f"{path}: link edge {head!r}->{tail!r} matches no role"
            )
    for query, links in query_links.items():
        if not links:
            raise GraphError(f"{path}: query {query!r} has no links")
        aug.add_query(query, links)
    for answer, links in answer_links.items():
        if not links:
            raise GraphError(f"{path}: answer {answer!r} has no links")
        aug.add_answer(answer, links)
    # add_query/add_answer normalize; restore the exact stored weights
    # (they were already normalized at attach time, but exactness
    # matters for bit-for-bit round trips).
    for head, tail, weight in link_edges:
        aug.graph.set_weight(head, tail, weight)
    return aug
