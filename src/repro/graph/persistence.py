"""Persistence for augmented graphs.

A deployed system must survive restarts with its *optimized* weights —
otherwise every vote-driven improvement evaporates.  Plain graphs
round-trip through :mod:`repro.graph.io`; an
:class:`~repro.graph.augmented.AugmentedGraph` additionally needs its
role bookkeeping (which nodes are queries/answers), which this module
serializes alongside the combined graph in a single JSON document.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphError
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import WeightedDiGraph

#: Schema version written into every file; bump on incompatible change.
FORMAT_VERSION = 1


def save_augmented_graph(aug: AugmentedGraph, path: "str | Path") -> None:
    """Write an augmented graph (weights + roles) to JSON.

    Weights round-trip exactly (JSON numbers are IEEE doubles), so a
    save/load cycle preserves every similarity score bit for bit.
    """
    graph = aug.graph
    payload = {
        "format": "repro-augmented-graph",
        "version": FORMAT_VERSION,
        "nodes": list(graph.nodes()),
        "edges": [[e.head, e.tail, e.weight] for e in graph.edges()],
        "queries": sorted(aug.query_nodes, key=repr),
        "answers": sorted(aug.answer_nodes, key=repr),
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_augmented_graph(path: "str | Path") -> AugmentedGraph:
    """Load an augmented graph previously written by :func:`save_augmented_graph`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise GraphError(f"{path}: not valid JSON") from exc
    if not isinstance(payload, dict) or payload.get("format") != "repro-augmented-graph":
        raise GraphError(f"{path}: not a repro augmented-graph file")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise GraphError(
            f"{path}: unsupported format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )

    queries = set(payload["queries"])
    answers = set(payload["answers"])
    special = queries | answers

    # Rebuild the entity knowledge graph first, then reattach roles.
    kg = WeightedDiGraph(strict=False)
    for node in payload["nodes"]:
        if node not in special:
            kg.add_node(node)
    link_edges = []
    for head, tail, weight in payload["edges"]:
        if head in special or tail in special:
            link_edges.append((head, tail, float(weight)))
        else:
            kg.add_edge(head, tail, float(weight))

    aug = AugmentedGraph(kg)
    query_links: dict = {q: {} for q in queries}
    answer_links: dict = {a: {} for a in answers}
    for head, tail, weight in link_edges:
        if head in queries:
            query_links[head][tail] = weight
        elif tail in answers:
            answer_links[tail][head] = weight
        else:
            raise GraphError(
                f"{path}: link edge {head!r}->{tail!r} matches no role"
            )
    for query, links in query_links.items():
        if not links:
            raise GraphError(f"{path}: query {query!r} has no links")
        aug.add_query(query, links)
    for answer, links in answer_links.items():
        if not links:
            raise GraphError(f"{path}: answer {answer!r} has no links")
        aug.add_answer(answer, links)
    # add_query/add_answer normalize; restore the exact stored weights
    # (they were already normalized at attach time, but exactness
    # matters for bit-for-bit round trips).
    for head, tail, weight in link_edges:
        aug.graph.set_weight(head, tail, weight)
    return aug
