"""Graph statistics and summaries.

Production hygiene for a graph library: quick structural summaries
(Table II-style rows for arbitrary graphs), degree distributions, and
reachability profiles.  The reachability profile also has an analytical
role — it predicts the cost of the ``O(d^L)`` walk enumeration and how
much similarity mass a given pruning threshold can capture, which is
what Fig. 7 measures empirically.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.errors import NodeNotFoundError
from repro.graph.digraph import Node, WeightedDiGraph


@dataclass(frozen=True)
class GraphSummary:
    """Structural summary of a graph (a Table II row plus weight info)."""

    num_nodes: int
    num_edges: int
    average_degree: float
    max_out_degree: int
    max_in_degree: int
    num_sinks: int
    num_sources: int
    min_weight: float
    max_weight: float
    max_out_weight_sum: float

    def as_row(self) -> list:
        """Cells for a text-table rendering."""
        return [
            self.num_nodes,
            self.num_edges,
            f"{self.average_degree:.2f}",
            self.max_out_degree,
            self.max_in_degree,
            self.num_sinks,
            self.num_sources,
            f"{self.min_weight:.4f}",
            f"{self.max_weight:.4f}",
            f"{self.max_out_weight_sum:.4f}",
        ]


def summarize(graph: WeightedDiGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` in one pass over the graph."""
    max_out = max_in = 0
    sinks = sources = 0
    min_w, max_w = float("inf"), float("-inf")
    max_sum = 0.0
    for node in graph.nodes():
        out_degree = graph.out_degree(node)
        in_degree = graph.in_degree(node)
        max_out = max(max_out, out_degree)
        max_in = max(max_in, in_degree)
        sinks += out_degree == 0
        sources += in_degree == 0
        if out_degree:
            succ = graph.successors(node)
            max_sum = max(max_sum, sum(succ.values()))
            for weight in succ.values():
                min_w = min(min_w, weight)
                max_w = max(max_w, weight)
    if graph.num_edges == 0:
        min_w = max_w = 0.0
    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree(),
        max_out_degree=max_out,
        max_in_degree=max_in,
        num_sinks=sinks,
        num_sources=sources,
        min_weight=min_w,
        max_weight=max_w,
        max_out_weight_sum=max_sum,
    )


def out_degree_distribution(graph: WeightedDiGraph) -> dict[int, int]:
    """``{out-degree: node count}`` histogram."""
    counts = Counter(graph.out_degree(node) for node in graph.nodes())
    return dict(sorted(counts.items()))


def reachability_profile(
    graph: WeightedDiGraph, source: Node, max_depth: int
) -> dict[int, int]:
    """Number of *newly* reachable nodes at each hop distance from source.

    ``profile[d]`` counts nodes whose shortest distance from ``source``
    is exactly ``d`` (``profile[0] == 1``).  The cumulative sum bounds
    how many answers a pruning threshold ``L`` can score at all, and the
    per-level growth rate estimates the effective branching factor that
    drives the walk-enumeration cost.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if max_depth < 0:
        raise ValueError(f"max_depth must be non-negative, got {max_depth}")
    distances = {source: 0}
    frontier = deque([source])
    profile = Counter({0: 1})
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if depth >= max_depth:
            continue
        for successor in graph.successors(node):
            if successor not in distances:
                distances[successor] = depth + 1
                profile[depth + 1] += 1
                frontier.append(successor)
    return {d: profile.get(d, 0) for d in range(max_depth + 1)}


def effective_branching_factor(profile: dict[int, int]) -> float:
    """Geometric-mean growth rate of a reachability profile.

    Estimates the ``d`` of the ``O(d^L)`` enumeration cost; levels after
    the frontier stops growing are excluded (the graph ran out, not the
    branching).
    """
    rates = []
    depths = sorted(profile)
    for prev, curr in zip(depths, depths[1:]):
        if profile[prev] > 0 and profile[curr] > 0:
            rates.append(profile[curr] / profile[prev])
    if not rates:
        return 0.0
    product = 1.0
    for rate in rates:
        product *= rate
    return product ** (1.0 / len(rates))
