"""Graph serialization: KONECT-style edge lists and JSON.

The paper's efficiency datasets come from KONECT, whose files are plain
edge lists with ``%``-prefixed comment headers and whitespace-separated
``head tail [weight]`` rows.  :func:`load_edge_list` reads that format
(so a user who has the real Twitter/Digg/Gnutella files can plug them
in), and :func:`save_edge_list` writes it back.  The JSON format is the
library's own round-trip format and preserves node labels exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphError
from repro.graph.digraph import WeightedDiGraph
from repro.graph.normalize import normalize_out_weights


def load_edge_list(
    path: "str | Path",
    *,
    default_weight: float = 1.0,
    normalize: bool = True,
    out_mass: float = 1.0,
    strict: bool = False,
) -> WeightedDiGraph:
    """Load a KONECT/TSV edge list into a :class:`WeightedDiGraph`.

    Parameters
    ----------
    path:
        File with one ``head tail [weight]`` triple per line; lines
        starting with ``%`` or ``#`` are comments.  Node labels are kept
        as strings.
    default_weight:
        Weight assigned to edges whose line has no weight column (KONECT
        "unweighted" datasets).
    normalize:
        When true (default), each node's out-weights are rescaled to sum
        to ``out_mass``, turning a raw adjacency structure into the
        transition-probability graph the similarity code expects.
    strict:
        Passed through to the graph constructor.
    """
    path = Path(path)
    graph = WeightedDiGraph(strict=False)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith(("%", "#")):
                continue
            parts = text.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{lineno}: expected 'head tail [weight]', got {text!r}"
                )
            head, tail = parts[0], parts[1]
            if head == tail:
                continue  # KONECT datasets occasionally contain self-loops.
            try:
                weight = float(parts[2]) if len(parts) >= 3 else default_weight
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: bad weight in {text!r}") from exc
            if weight <= 0:
                continue
            graph.add_edge(head, tail, weight)
    if normalize:
        normalize_out_weights(graph, target=out_mass)
    graph.strict = strict
    return graph


def save_edge_list(graph: WeightedDiGraph, path: "str | Path", *, header: str = "") -> None:
    """Write ``graph`` as a whitespace-separated weighted edge list."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"% {line}\n")
        for edge in graph.edges():
            handle.write(f"{edge.head}\t{edge.tail}\t{edge.weight!r}\n")


def save_json_graph(graph: WeightedDiGraph, path: "str | Path") -> None:
    """Write ``graph`` to JSON with exact weight round-trip.

    The format is ``{"nodes": [...], "edges": [[head, tail, weight]]}``;
    weights survive exactly because JSON floats are IEEE doubles.
    """
    payload = {
        "nodes": list(graph.nodes()),
        "edges": [[e.head, e.tail, e.weight] for e in graph.edges()],
        "strict": graph.strict,
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_json_graph(path: "str | Path") -> WeightedDiGraph:
    """Load a graph previously written by :func:`save_json_graph`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        nodes = payload["nodes"]
        edges = payload["edges"]
    except (TypeError, KeyError) as exc:
        raise GraphError(f"{path}: not a repro JSON graph") from exc
    graph = WeightedDiGraph(strict=False)
    for node in nodes:
        graph.add_node(node)
    for head, tail, weight in edges:
        graph.add_edge(head, tail, float(weight))
    graph.strict = bool(payload.get("strict", False))
    return graph
