"""Graph generators for experiments.

Three generators are provided:

- :func:`random_digraph` — a random directed graph with a target average
  degree and per-node normalized (sub-stochastic) out-weights.  This is
  the "Random" row of Table II and the substrate of the parameter-impact
  experiments (Section VII-E).
- :func:`konect_like` — a random graph matched to the published
  ``|V|``/``|E|`` statistics of the KONECT datasets used in the paper's
  efficiency experiments (Table II: Twitter, Digg, Gnutella) plus the
  Taobao knowledge graph.  The real graphs are not redistributable
  offline; the efficiency results depend only on scale and degree, which
  these stand-ins match (see DESIGN.md, substitution table).
- :func:`helpdesk_graph` — a small topical knowledge graph used by the
  examples and tests, structurally similar to a customer-service KG:
  clusters of entities per topic with dense intra-topic and sparse
  inter-topic relations.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.graph.digraph import WeightedDiGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

#: Published statistics of the paper's datasets (Table II).
KONECT_STATS: Mapping[str, dict[str, int]] = {
    "taobao": {"nodes": 1_663, "edges": 17_591},
    "twitter": {"nodes": 23_370, "edges": 33_101},
    "digg": {"nodes": 30_398, "edges": 87_627},
    "gnutella": {"nodes": 62_586, "edges": 147_892},
}


def random_digraph(
    num_nodes: int,
    avg_degree: float,
    *,
    seed: "int | None | np.random.Generator" = None,
    out_mass: float = 1.0,
    node_prefix: str = "n",
) -> WeightedDiGraph:
    """Generate a random weighted digraph with normalized out-weights.

    Each node receives a Poisson-distributed number of out-edges (mean
    ``avg_degree``, at least one) to uniformly chosen distinct targets.
    Raw weights are drawn uniformly and normalized so each node's
    out-weights sum to ``out_mass`` (default 1: row-stochastic, like the
    conditional-probability initialization of Section III-A).

    Parameters
    ----------
    num_nodes:
        Number of nodes; node labels are ``f"{node_prefix}{i}"``.
    avg_degree:
        Target average out-degree ``N_degree``.
    seed:
        Seed or generator for reproducibility.
    out_mass:
        Total out-weight per node, in ``(0, 1]``.  Values below one leave
        "death" probability at every step, guaranteeing that PPR-style
        series converge even after augmentation.
    node_prefix:
        Prefix for generated node labels.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    check_positive("avg_degree", avg_degree)
    if not 0.0 < out_mass <= 1.0:
        raise ValueError(f"out_mass must be in (0, 1], got {out_mass}")
    rng = ensure_rng(seed)

    graph = WeightedDiGraph(strict=False)
    labels = [f"{node_prefix}{i}" for i in range(num_nodes)]
    for label in labels:
        graph.add_node(label)
    if num_nodes == 1:
        return graph

    degrees = rng.poisson(avg_degree, size=num_nodes)
    degrees = np.maximum(degrees, 1)
    degrees = np.minimum(degrees, num_nodes - 1)
    for i, label in enumerate(labels):
        k = int(degrees[i])
        targets = rng.choice(num_nodes, size=k + 1, replace=False)
        targets = [int(t) for t in targets if int(t) != i][:k]
        raw = rng.uniform(0.1, 1.0, size=len(targets))
        raw = raw / raw.sum() * out_mass
        for t, w in zip(targets, raw):
            graph.add_edge(label, labels[t], float(w))
    return graph


def konect_like(
    name: str,
    *,
    seed: "int | None | np.random.Generator" = None,
    scale: float = 1.0,
    out_mass: float = 1.0,
) -> WeightedDiGraph:
    """Generate a random graph matched to a Table II dataset's statistics.

    Parameters
    ----------
    name:
        One of ``"taobao"``, ``"twitter"``, ``"digg"``, ``"gnutella"``
        (case-insensitive).
    scale:
        Linear scale factor applied to both ``|V|`` and ``|E|``; the
        average degree — which drives the path-enumeration cost — is
        preserved.  Benchmarks use ``scale < 1`` so they finish on a
        laptop while keeping each dataset's degree profile.
    seed, out_mass:
        As in :func:`random_digraph`.
    """
    key = name.lower()
    if key not in KONECT_STATS:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {sorted(KONECT_STATS)}"
        )
    check_positive("scale", scale)
    stats = KONECT_STATS[key]
    num_nodes = max(2, int(round(stats["nodes"] * scale)))
    num_edges = max(1, int(round(stats["edges"] * scale)))
    avg_degree = num_edges / num_nodes
    return random_digraph(
        num_nodes,
        avg_degree,
        seed=seed,
        out_mass=out_mass,
        node_prefix=f"{key}_",
    )


def helpdesk_graph(
    *,
    num_topics: int = 8,
    entities_per_topic: int = 12,
    intra_topic_degree: float = 4.0,
    inter_topic_degree: float = 1.0,
    seed: "int | None | np.random.Generator" = None,
    out_mass: float = 0.9,
) -> tuple[WeightedDiGraph, dict[str, list[str]]]:
    """Generate a topical help-desk-style knowledge graph.

    The graph mimics the structure the paper observes in real knowledge
    graphs ("the nodes with high correlations centrally distributed in a
    sub-graph may represent a domain", Section VI-A): entities cluster
    into topics, with dense intra-topic edges and a sparse inter-topic
    backbone.  This makes it a good substrate for exercising the
    split-and-merge strategy, whose clustering step exists precisely
    because votes localize to such sub-graphs.

    Returns
    -------
    (graph, topics):
        The knowledge graph and a mapping ``topic name -> entity labels``.

    Notes
    -----
    Out-weights per node are normalized to ``out_mass`` (default 0.9,
    leaving walk-termination mass so similarity series are well behaved
    after answer links are added).
    """
    if num_topics <= 0 or entities_per_topic <= 1:
        raise ValueError("need at least one topic and two entities per topic")
    rng = ensure_rng(seed)

    topics: dict[str, list[str]] = {}
    for t in range(num_topics):
        topic = f"topic{t}"
        topics[topic] = [f"{topic}/e{i}" for i in range(entities_per_topic)]

    graph = WeightedDiGraph(strict=False)
    all_entities: list[str] = []
    for members in topics.values():
        for entity in members:
            graph.add_node(entity)
            all_entities.append(entity)

    topic_list = list(topics.values())
    for t_idx, members in enumerate(topic_list):
        for i, entity in enumerate(members):
            # Intra-topic edges: Poisson count of distinct targets.
            k_intra = max(1, int(rng.poisson(intra_topic_degree)))
            k_intra = min(k_intra, len(members) - 1)
            choices = rng.choice(len(members), size=k_intra + 1, replace=False)
            targets = [members[int(c)] for c in choices if int(c) != i][:k_intra]
            # Inter-topic edges: sparse links to other topics' entities.
            k_inter = int(rng.poisson(inter_topic_degree))
            for _ in range(k_inter):
                other_topic = int(rng.integers(0, len(topic_list)))
                if other_topic == t_idx and len(topic_list) > 1:
                    continue
                other = topic_list[other_topic]
                cand = other[int(rng.integers(0, len(other)))]
                if cand != entity and cand not in targets:
                    targets.append(cand)
            raw = rng.uniform(0.2, 1.0, size=len(targets))
            raw = raw / raw.sum() * out_mass
            for target, weight in zip(targets, raw):
                graph.add_edge(entity, target, float(weight))
    return graph, topics


def perturb_weights(
    graph: WeightedDiGraph,
    *,
    noise: float = 0.3,
    seed: "int | None | np.random.Generator" = None,
    renormalize: bool = True,
) -> WeightedDiGraph:
    """Return a copy of ``graph`` with multiplicatively noised weights.

    The effectiveness experiments need a *corrupted* graph whose weights
    deviate from a ground truth (the paper's motivation: "the knowledge
    graph constructed based on source data may contain errors").  Each
    weight is multiplied by ``exp(noise * N(0, 1))``; when
    ``renormalize`` is set, every node's out-weights are rescaled to
    their original sum so the graph stays comparably stochastic and only
    the *relative* weights — which determine rankings — change.
    """
    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise}")
    rng = ensure_rng(seed)
    noisy = graph.copy()
    for node in list(noisy.nodes()):
        succ = noisy.successors(node)
        if not succ:
            continue
        original_sum = sum(succ.values())
        factors = np.exp(noise * rng.standard_normal(len(succ)))
        new = {t: w * float(f) for (t, w), f in zip(succ.items(), factors)}
        if renormalize:
            total = sum(new.values())
            new = {t: w / total * original_sum for t, w in new.items()}
        for tail, weight in new.items():
            noisy.set_weight(node, tail, weight)
    return noisy
