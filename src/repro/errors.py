"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type to handle any library
failure while letting genuine programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for structural problems in a graph (missing node/edge, ...)."""


class NodeNotFoundError(GraphError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, head: object, tail: object) -> None:
        super().__init__(f"edge {head!r} -> {tail!r} is not in the graph")
        self.head = head
        self.tail = tail


class InvalidWeightError(GraphError):
    """Raised when an edge weight is outside its legal domain.

    Edge weights in this library are transition probabilities, so every
    weight must be a finite real number in ``(0, 1]`` and the out-weights
    of a node may not sum to more than ``1 + tolerance``.
    """


class AugmentationError(GraphError):
    """Raised for invalid query/answer attachment to a knowledge graph."""


class PersistenceError(ReproError):
    """Raised when the durability layer cannot log, snapshot, or recover.

    Covers vote write-ahead-log corruption (a broken record that is
    *not* the torn final line), snapshot directories with no usable
    snapshot, and votes whose node ids cannot be serialized to JSON.
    """


class SimilarityError(ReproError):
    """Raised when a similarity evaluation cannot be performed."""


class ConvergenceError(SimilarityError):
    """Raised when an iterative similarity computation fails to converge."""


class UnknownBackendError(SimilarityError, KeyError):
    """Raised when a propagation-backend name is not in the registry.

    Subclasses :class:`KeyError` as well, since the registry is a
    name-keyed lookup; the custom ``__str__`` keeps the message readable
    (``KeyError`` would ``repr`` it).
    """

    def __str__(self) -> str:
        return Exception.__str__(self)


class SGPError(ReproError):
    """Base class for signomial-geometric-programming errors."""


class SGPModelError(SGPError):
    """Raised for malformed SGP problems (unknown variables, bad bounds)."""


class SGPSolverError(SGPError):
    """Raised when the SGP solver cannot produce a usable solution."""


class VoteError(ReproError):
    """Raised for malformed votes (best answer missing from the list, ...)."""


class InfeasibleVoteError(VoteError):
    """Raised when a vote fails the extreme-condition feasibility judgment.

    Section V of the paper: a vote whose best answer cannot outrank the
    answer above it even under the most favourable weight assignment is
    unsatisfiable, and encoding it would poison the SGP.
    """


class WorkerError(ReproError):
    """Raised for concurrent-serving lifecycle misuse.

    Covers submitting to a closed ingest queue, a ``put`` that timed
    out against sustained backpressure, and starting/stopping the
    background optimizer worker out of order.
    """


class ClusteringError(ReproError):
    """Raised when vote clustering cannot be carried out."""


class CorpusError(ReproError):
    """Raised for malformed QA corpora or entity vocabularies."""


class EvaluationError(ReproError):
    """Raised when a metric is asked to evaluate inconsistent inputs."""
