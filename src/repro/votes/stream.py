"""Online vote streams and batching policies.

The paper's framework is interactive: votes arrive one at a time as
users ask questions, but the multi-vote solution wants *batches* (one
SGP over many votes handles conflicts that greedy per-vote processing
cannot).  A deployment therefore needs a policy for *when* to trigger
optimization.  This module provides the batching layer:

- :class:`CountPolicy` — optimize every N votes (the simplest
  production setting);
- :class:`NegativeCountPolicy` — optimize after N *negative* votes
  (positive votes alone never change the optimum ranking, so they can
  accumulate freely);
- :class:`ConflictPolicy` — optimize as soon as two votes disagree
  about the same query (the situation the multi-vote machinery exists
  for), with a count-based fallback.

:class:`repro.optimize.online.OnlineOptimizer` consumes these.
"""

from __future__ import annotations

from collections.abc import Iterable, Sized

from repro.errors import VoteError
from repro.votes.types import Vote, VoteSet


class CountPolicy:
    """Trigger after every ``batch_size`` votes.

    ``should_optimize`` prefers ``len()`` on sized collections (the
    normal :class:`~repro.votes.types.VoteSet` case) and otherwise
    counts with early exit, consuming a one-shot iterator no further
    than the decision requires.  Note that an exhausted generator
    passed *again* necessarily counts as empty — hand policies a
    collection when the same pending set is consulted repeatedly.
    """

    def __init__(self, batch_size: int = 10) -> None:
        if batch_size < 1:
            raise VoteError(f"batch_size must be ≥ 1, got {batch_size}")
        self.batch_size = batch_size

    def should_optimize(self, pending: "Iterable[Vote]") -> bool:
        """Whether the pending votes warrant an optimization pass."""
        if isinstance(pending, Sized):
            return len(pending) >= self.batch_size
        count = 0
        for _ in pending:
            count += 1
            if count >= self.batch_size:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CountPolicy(batch_size={self.batch_size})"


class NegativeCountPolicy:
    """Trigger after ``negative_votes`` negative votes.

    Positive votes keep accumulating without triggering: they only
    matter as *constraints alongside* negative votes, never as the
    reason to change the graph.
    """

    def __init__(self, negative_votes: int = 5) -> None:
        if negative_votes < 1:
            raise VoteError(f"negative_votes must be ≥ 1, got {negative_votes}")
        self.negative_votes = negative_votes

    def should_optimize(self, pending: "Iterable[Vote]") -> bool:
        """Whether enough negative feedback has accumulated.

        Works on any iterable (one pass, early exit); see
        :class:`CountPolicy` for the one-shot-iterator caveat.
        """
        if isinstance(pending, VoteSet):
            return pending.num_negative >= self.negative_votes
        negatives = 0
        for vote in pending:
            if vote.is_negative:
                negatives += 1
                if negatives >= self.negative_votes:
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NegativeCountPolicy(negative_votes={self.negative_votes})"


class ConflictPolicy:
    """Trigger on the first intra-query conflict, else after ``max_pending``.

    Two votes conflict when they name different best answers for the
    same query.  Conflicts are exactly what the deviation-variable
    machinery arbitrates, and arbitrating them early keeps the graph
    from oscillating under greedy updates.
    """

    def __init__(self, max_pending: int = 25) -> None:
        if max_pending < 1:
            raise VoteError(f"max_pending must be ≥ 1, got {max_pending}")
        self.max_pending = max_pending

    def should_optimize(self, pending: "Iterable[Vote]") -> bool:
        """Whether a conflict exists or the backlog is too large.

        One pass with early exit, so one-shot iterators are consumed
        only as far as the first trigger; see :class:`CountPolicy` for
        the caveat on re-passing an exhausted generator.
        """
        best_by_query: dict = {}
        count = 0
        for vote in pending:
            count += 1
            seen = best_by_query.setdefault(vote.query, vote.best_answer)
            if seen != vote.best_answer:
                return True
            if count >= self.max_pending:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConflictPolicy(max_pending={self.max_pending})"
