"""Synthetic vote generation.

Two generators, matching the two ways the paper obtains votes:

- :func:`generate_synthetic_votes` reproduces the protocol of Section
  VII-A1 ("Knowledge Graph with Synthetic Votes"): rank the answers for
  each query, then pick a best answer at a controlled position — the
  average position of negative votes' best answers is the paper's
  ``N_aveN`` parameter (default 10), and positives confirm the top
  answer.  These votes need not be *satisfiable*; they exercise the
  efficiency experiments.
- :func:`generate_votes_from_oracle` models real users (the Taobao user
  study): an oracle — typically rankings under a hidden ground-truth
  graph — knows the genuinely best answer; users report it, with an
  optional error rate under which they vote for a random other answer.
  These votes drive the effectiveness experiments, where optimizing the
  corrupted graph against the votes should recover the ground truth's
  rankings.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import VoteError
from repro.graph.augmented import AugmentedGraph
from repro.graph.digraph import Node
from repro.serving.params import SimilarityParams
from repro.similarity.inverse_pdistance import (
    DEFAULT_MAX_LENGTH,
    DEFAULT_RESTART_PROB,
)
from repro.similarity.top_k import rank_answers
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability
from repro.votes.types import Vote, VoteSet


def generate_synthetic_votes(
    aug: AugmentedGraph,
    queries: "Sequence[Node] | None" = None,
    *,
    k: int = 20,
    negative_fraction: float = 0.5,
    avg_negative_position: int = 10,
    seed: "int | None | np.random.Generator" = None,
    max_length: int = DEFAULT_MAX_LENGTH,
    restart_prob: float = DEFAULT_RESTART_PROB,
) -> VoteSet:
    """Generate votes by the paper's synthetic protocol (Section VII-A1).

    Parameters
    ----------
    aug:
        The augmented graph (queries and answers already attached).
    queries:
        Query nodes to vote on; all queries in the graph by default.
    k:
        Top-k list length shown to the "user" (paper default 20).
    negative_fraction:
        Probability that a query's vote is negative.
    avg_negative_position:
        ``N_aveN``: expected rank of the best answer in negative votes
        (paper default 10).  Positions are drawn uniformly from
        ``[2, 2·N_aveN − 2]`` clipped to the list length, whose mean is
        ``N_aveN`` when the list is long enough.
    seed, max_length, restart_prob:
        Reproducibility and similarity-evaluation parameters.

    Notes
    -----
    Queries whose candidate list has fewer than two answers cannot carry
    a negative vote; they fall back to a positive one.
    """
    check_probability("negative_fraction", negative_fraction)
    if avg_negative_position < 2:
        raise VoteError(
            f"avg_negative_position must be at least 2, got {avg_negative_position}"
        )
    rng = ensure_rng(seed)
    query_list = (
        list(queries) if queries is not None else sorted(aug.query_nodes, key=repr)
    )
    params = SimilarityParams(
        k=k, max_length=max_length, restart_prob=restart_prob
    )
    votes = VoteSet()
    for query in query_list:
        ranked = rank_answers(aug, query, params=params)
        answers = tuple(answer for answer, _ in ranked)
        make_negative = (
            len(answers) >= 2 and rng.uniform() < negative_fraction
        )
        if make_negative:
            high = min(len(answers), max(2, 2 * avg_negative_position - 2))
            position = int(rng.integers(2, high + 1))
            best = answers[position - 1]
        else:
            best = answers[0]
        votes.add(Vote(query=query, ranked_answers=answers, best_answer=best))
    return votes


class GroundTruthOracle:
    """Answers "which answer is truly best?" from a hidden reference graph.

    The effectiveness experiments corrupt a ground-truth graph and then
    check whether vote-driven optimization recovers its rankings.  The
    oracle plays the user: asked about a query, it ranks the candidate
    answers under the *reference* graph and reports the top one.
    """

    def __init__(
        self,
        reference: AugmentedGraph,
        *,
        max_length: int = DEFAULT_MAX_LENGTH,
        restart_prob: float = DEFAULT_RESTART_PROB,
    ) -> None:
        self._reference = reference
        self._max_length = max_length
        self._restart_prob = restart_prob

    def best_answer(self, query: Node, candidates: Sequence[Node]) -> Node:
        """The truly best answer among ``candidates`` for ``query``."""
        ranked = rank_answers(
            self._reference,
            query,
            params=SimilarityParams(
                k=len(candidates),
                max_length=self._max_length,
                restart_prob=self._restart_prob,
            ),
            answers=candidates,
        )
        return ranked[0][0]

    def __call__(self, query: Node, candidates: Sequence[Node]) -> Node:
        return self.best_answer(query, candidates)


def generate_votes_from_oracle(
    aug: AugmentedGraph,
    oracle,
    queries: "Iterable[Node] | None" = None,
    *,
    k: int = 20,
    error_rate: float = 0.0,
    seed: "int | None | np.random.Generator" = None,
    max_length: int = DEFAULT_MAX_LENGTH,
    restart_prob: float = DEFAULT_RESTART_PROB,
) -> VoteSet:
    """Generate votes from simulated users consulting an oracle.

    For each query the current graph produces a top-k list; the user
    votes for ``oracle(query, shown_answers)``, except with probability
    ``error_rate`` they vote for a uniformly random *other* shown answer
    (the erroneous votes Section V's feasibility filter exists for).

    Parameters
    ----------
    oracle:
        Callable ``(query, candidates) -> best answer``; see
        :class:`GroundTruthOracle`.
    error_rate:
        Probability of a corrupted vote.
    """
    check_probability("error_rate", error_rate)
    rng = ensure_rng(seed)
    query_list = (
        list(queries) if queries is not None else sorted(aug.query_nodes, key=repr)
    )
    params = SimilarityParams(
        k=k, max_length=max_length, restart_prob=restart_prob
    )
    votes = VoteSet()
    for query in query_list:
        ranked = rank_answers(aug, query, params=params)
        answers = tuple(answer for answer, _ in ranked)
        best = oracle(query, answers)
        if best not in answers:
            raise VoteError(
                f"oracle returned {best!r}, which is not among the shown "
                f"answers for query {query!r}"
            )
        if error_rate and len(answers) > 1 and rng.uniform() < error_rate:
            wrong = [a for a in answers if a != best]
            best = wrong[int(rng.integers(0, len(wrong)))]
        votes.add(Vote(query=query, ranked_answers=answers, best_answer=best))
    return votes
