"""The vote model: vote types, synthetic generation, feasibility filtering.

Definition 2 of the paper: each answered query may receive one vote.  A
*negative* vote names a best answer that did not rank first; a
*positive* vote confirms the top-ranked answer.  The optimizer consumes
:class:`~repro.votes.types.VoteSet` objects; the efficiency experiments
generate them synthetically (:mod:`repro.votes.simulate`); the
multi-vote solution pre-filters unsatisfiable votes with the
extreme-condition judgment (:mod:`repro.votes.feasibility`).
"""

from repro.votes.types import Vote, VoteSet
from repro.votes.simulate import (
    generate_synthetic_votes,
    generate_votes_from_oracle,
    GroundTruthOracle,
)
from repro.votes.feasibility import filter_feasible, is_vote_feasible
from repro.votes.stream import ConflictPolicy, CountPolicy, NegativeCountPolicy

__all__ = [
    "Vote",
    "VoteSet",
    "generate_synthetic_votes",
    "generate_votes_from_oracle",
    "GroundTruthOracle",
    "filter_feasible",
    "is_vote_feasible",
    "CountPolicy",
    "NegativeCountPolicy",
    "ConflictPolicy",
]
