"""Vote data types (Definition 2 of the paper)."""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import VoteError
from repro.graph.digraph import Node


@dataclass(frozen=True)
class Vote:
    """One user vote on the ranked answer list of one query.

    Attributes
    ----------
    query:
        The query node the vote concerns.
    ranked_answers:
        The top-k answer list *as shown to the user* (rank order, best
        first).  The SGP encoder builds one constraint per non-best
        answer in this list, so the list captures the context in which
        the vote was cast.
    best_answer:
        The answer the user voted best.  Must be in ``ranked_answers``.
    weight:
        Trustworthiness of the vote (default 1).  The paper's intro
        notes that Q&A sites aggregate up/down-vote *counts* as a
        trustworthiness signal; this field carries that signal into the
        optimization: a vote of weight ``w`` scales its sigmoid
        violation penalty (Eq. 18) and its say in the split-and-merge
        voting rule by ``w``.

    A vote is *positive* when the best answer already ranks first and
    *negative* otherwise (Definition 2).
    """

    query: Node
    ranked_answers: tuple[Node, ...]
    best_answer: Node
    weight: float = 1.0

    def __post_init__(self) -> None:
        answers = tuple(self.ranked_answers)
        object.__setattr__(self, "ranked_answers", answers)
        if len(answers) < 1:
            raise VoteError(f"vote on {self.query!r}: empty answer list")
        if len(set(answers)) != len(answers):
            raise VoteError(f"vote on {self.query!r}: duplicate answers in the list")
        if self.best_answer not in answers:
            raise VoteError(
                f"vote on {self.query!r}: best answer {self.best_answer!r} "
                f"is not in the ranked list"
            )
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise VoteError(
                f"vote on {self.query!r}: weight must be finite and > 0, "
                f"got {self.weight!r}"
            )

    @property
    def is_positive(self) -> bool:
        """Whether the voted-best answer already ranks first."""
        return self.ranked_answers[0] == self.best_answer

    @property
    def is_negative(self) -> bool:
        """Whether the voted-best answer ranks below first."""
        return not self.is_positive

    @property
    def best_rank(self) -> int:
        """1-based rank of the best answer in the shown list (``rank_t``)."""
        return self.ranked_answers.index(self.best_answer) + 1

    @property
    def k(self) -> int:
        """Length of the shown answer list."""
        return len(self.ranked_answers)

    def others(self) -> tuple[Node, ...]:
        """Every shown answer except the voted-best one.

        These are the right-hand sides of the vote's constraints
        (Eq. 10/13: the best answer must beat each of them).
        """
        return tuple(a for a in self.ranked_answers if a != self.best_answer)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "+" if self.is_positive else "-"
        return (
            f"Vote({kind}, query={self.query!r}, best={self.best_answer!r}, "
            f"rank={self.best_rank}/{self.k})"
        )


@dataclass
class VoteSet:
    """A collection of votes with negative/positive views.

    The paper manipulates ``T⁻`` (negative set) and ``T⁺`` (positive
    set) separately; this container keeps them together (preserving
    arrival order, which the greedy single-vote solution depends on) and
    exposes both views.
    """

    votes: list[Vote] = field(default_factory=list)

    @classmethod
    def from_iterable(cls, votes: Iterable[Vote]) -> "VoteSet":
        """Build from any iterable of votes."""
        return cls(list(votes))

    def add(self, vote: Vote) -> None:
        """Append a vote."""
        if not isinstance(vote, Vote):
            raise VoteError(f"expected a Vote, got {type(vote).__name__}")
        self.votes.append(vote)

    @property
    def negative(self) -> list[Vote]:
        """``T⁻`` — the negative votes, in arrival order."""
        return [v for v in self.votes if v.is_negative]

    @property
    def positive(self) -> list[Vote]:
        """``T⁺`` — the positive votes, in arrival order."""
        return [v for v in self.votes if v.is_positive]

    @property
    def num_negative(self) -> int:
        """``|T⁻|``."""
        return sum(1 for v in self.votes if v.is_negative)

    @property
    def num_positive(self) -> int:
        """``|T⁺|``."""
        return sum(1 for v in self.votes if v.is_positive)

    def queries(self) -> list[Node]:
        """The (possibly repeating) query nodes of the votes."""
        return [v.query for v in self.votes]

    @property
    def total_weight(self) -> float:
        """Sum of the votes' trust weights (``n_C`` in the merge rule)."""
        return float(sum(v.weight for v in self.votes))

    def subset(self, indices: Sequence[int]) -> "VoteSet":
        """A new VoteSet holding ``votes[i]`` for each index (split step)."""
        return VoteSet([self.votes[i] for i in indices])

    def __iter__(self) -> Iterator[Vote]:
        return iter(self.votes)

    def __len__(self) -> int:
        return len(self.votes)

    def __getitem__(self, index: int) -> Vote:
        return self.votes[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<VoteSet n={len(self.votes)} "
            f"negative={self.num_negative} positive={self.num_positive}>"
        )
