"""The extreme-condition feasibility judgment (Section V).

Some user votes are plain wrong: no assignment of edge weights can make
the voted answer beat the answers above it (for example, the voted
answer is unreachable from the query within the path budget).  Encoding
such a vote into the SGP poisons the program, so the multi-vote solution
filters first.

The paper's judgment: let ``rank`` be the position of the voted-best
answer ``v_a*`` and consider the answer directly above it,
``v_a_{rank-1}``.  Collect ``Set(v_a*)`` and ``Set(v_a_{rank-1})`` — the
edges on ≤ L walks from the query to each — and evaluate both
similarities under the most favourable weights:

- edges in both sets: a constant in ``(0, 1)``;
- edges only in ``Set(v_a*)``: weight 1 (maximally helpful);
- edges only in ``Set(v_a_{rank-1})``: weight 0 (removed).

If even then ``S(v_q, v_a*) ≤ S(v_q, v_a_{rank-1})``, the vote is
unsatisfiable and discarded.

One refinement over the paper's sketch: only *adjustable* edges
(entity→entity) are pushed to their extremes — query and answer links
are text-derived constants the optimizer cannot touch, so treating them
as free would accept votes the SGP still cannot satisfy.
"""

from __future__ import annotations

from repro.obs import get_registry, trace_span
from repro.graph.augmented import AugmentedGraph
from repro.paths.edgesets import reachable_edge_set
from repro.serving.params import SimilarityParams
from repro.similarity.backend import resolve_backend
from repro.similarity.inverse_pdistance import (
    DEFAULT_MAX_LENGTH,
    DEFAULT_RESTART_PROB,
)
from repro.utils.validation import check_fraction
from repro.votes.types import Vote, VoteSet


def is_vote_feasible(
    aug: AugmentedGraph,
    vote: Vote,
    *,
    max_length: int = DEFAULT_MAX_LENGTH,
    restart_prob: float = DEFAULT_RESTART_PROB,
    shared_weight: float = 0.5,
) -> bool:
    """Whether ``vote`` passes the extreme-condition judgment.

    Positive votes are always feasible (their best answer already ranks
    first, so the identity assignment satisfies them).  For a negative
    vote, the check asks whether the best answer can beat the answer
    *directly above it* under the extreme assignment — a necessary
    condition for it to beat everything above.

    Parameters
    ----------
    shared_weight:
        The constant assigned to edges shared by both path sets (the
        paper requires any value strictly between 0 and 1).
    """
    check_fraction("shared_weight", shared_weight)
    if vote.is_positive:
        return True

    graph = aug.graph
    rank = vote.best_rank
    rival = vote.ranked_answers[rank - 2]  # the answer directly above
    best_set = reachable_edge_set(graph, vote.query, vote.best_answer, max_length)
    rival_set = reachable_edge_set(graph, vote.query, rival, max_length)
    if not best_set:
        return False  # the voted answer is unreachable within the budget

    extreme = graph.copy()
    for head, tail in best_set | rival_set:
        if not aug.is_kg_edge(head, tail):
            continue  # links are constants the optimizer cannot move
        in_best = (head, tail) in best_set
        in_rival = (head, tail) in rival_set
        if in_best and in_rival:
            extreme.set_weight(head, tail, shared_weight)
        elif in_best:
            extreme.set_weight(head, tail, 1.0)
        else:
            extreme.remove_edge(head, tail)  # weight 0 == edge absent

    params = SimilarityParams(
        max_length=max_length, restart_prob=restart_prob
    )
    scores = resolve_backend(params).scores(
        extreme, vote.query, [vote.best_answer, rival], params=params
    )
    return scores[vote.best_answer] > scores[rival]


def filter_feasible(
    aug: AugmentedGraph,
    votes: VoteSet,
    *,
    max_length: int = DEFAULT_MAX_LENGTH,
    restart_prob: float = DEFAULT_RESTART_PROB,
    shared_weight: float = 0.5,
) -> tuple[VoteSet, list[Vote]]:
    """Split ``votes`` into (feasible, discarded) by the judgment.

    Returns the kept :class:`VoteSet` (order preserved) and the list of
    discarded votes, so the caller can report how much user feedback was
    rejected as erroneous.
    """
    kept = VoteSet()
    discarded: list[Vote] = []
    with trace_span("votes.feasibility_filter", num_votes=len(votes)) as span:
        for vote in votes:
            if is_vote_feasible(
                aug,
                vote,
                max_length=max_length,
                restart_prob=restart_prob,
                shared_weight=shared_weight,
            ):
                kept.add(vote)
            else:
                discarded.append(vote)
        span.set_attrs(kept=len(kept), discarded=len(discarded))
    registry = get_registry()
    registry.counter("votes_feasible_total").inc(len(kept))
    registry.counter("votes_infeasible_total").inc(len(discarded))
    return kept, discarded
